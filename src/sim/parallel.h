#ifndef TQSIM_SIM_PARALLEL_H_
#define TQSIM_SIM_PARALLEL_H_

/**
 * @file
 * Shared-memory parallel runtime for the hot kernels, reductions, and the
 * tree executor's shot/subtree dispatch.
 *
 * The backend is a single lazily-started persistent worker pool: the first
 * parallel call large enough to be worth splitting spawns the workers, and
 * every later call reuses them (no per-call thread spawn/join).  The pool is
 * resized by set_num_threads(); the initial thread count comes from the
 * TQSIM_NUM_THREADS environment variable, defaulting to 1 so single-core
 * runs and existing benchmarks are unchanged.
 *
 * Guarantees:
 *  - An exception thrown by a loop body on any thread is captured and
 *    rethrown on the calling thread after the region completes (the first
 *    one wins; the legacy implementation called std::terminate instead).
 *  - Loops below the grain threshold run inline on the caller with no pool
 *    interaction, so tiny states never pay a dispatch cost.
 *  - Parallel regions do not nest: a parallel_* call issued from inside a
 *    running region executes serially inline.  This is what makes the tree
 *    executor's shot-level dispatch compose with the threaded kernels.
 *  - Reductions (parallel_blocks / parallel_sum) always use the same fixed
 *    block decomposition regardless of thread count, so floating-point
 *    results are bit-identical at 1, 2, or N threads.
 *
 * The pool's locking protocol (run serialization, job publication, the
 * worker condition variables) is annotated for Clang Thread Safety
 * Analysis and compile-time checked on the clang CI legs
 * (docs/static-analysis.md#thread-safety-analysis).  Loop bodies must draw
 * randomness only from util::Rng streams split inside the region — never
 * from a by-reference-captured shared generator (tqsim-lint rule
 * rng-discipline).
 */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

namespace tqsim::sim {

/** Elements below which parallel_for(total, fn) stays serial. */
inline constexpr std::uint64_t kParallelGrain = std::uint64_t{1} << 14;

/** Fixed reduction block size (thread-count independent => deterministic). */
inline constexpr std::uint64_t kReduceBlock = std::uint64_t{1} << 15;

/**
 * Sets the global worker-thread count (>= 1).  The pool resizes lazily on
 * the next parallel call; 1 disables the pool entirely.
 */
void set_num_threads(int n);

/**
 * Returns the global worker-thread count.  The first call reads the
 * TQSIM_NUM_THREADS environment variable (invalid or unset => 1).
 */
int num_threads();

/** True while executing inside a parallel region (worker or caller task). */
bool in_parallel_region();

namespace detail {

/** Pool-backed range dispatch (type-erased slow path of parallel_for). */
void parallel_for_fn(
    std::uint64_t total, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/** Pool-backed blocked reduction (type-erased slow path of parallel_sum). */
double parallel_sum_fn(
    std::uint64_t total,
    const std::function<double(std::uint64_t, std::uint64_t)>& fn);

}  // namespace detail

/**
 * Runs fn(begin, end) over a partition of [0, total) across the pool.
 * Ranges are contiguous, non-overlapping, and cover [0, total); fn must be
 * thread-safe when num_threads() > 1.  Serial when total <= the grain.
 *
 * Implemented as a template so the serial fast path (small states, one
 * thread, nested regions) invokes the body directly — no std::function is
 * materialized, which keeps per-gate dispatch allocation-free on the tree
 * executor's hot path.  The pool is only engaged when the loop is actually
 * worth splitting.
 */
template <typename F>
inline void
parallel_for(std::uint64_t total, std::uint64_t grain, F&& fn)
{
    if (total == 0) {
        return;
    }
    if (num_threads() <= 1 || total <= grain || in_parallel_region()) {
        fn(std::uint64_t{0}, total);
        return;
    }
    detail::parallel_for_fn(total, grain, std::forward<F>(fn));
}

/** parallel_for with the default kParallelGrain serial threshold. */
template <typename F>
inline void
parallel_for(std::uint64_t total, F&& fn)
{
    parallel_for(total, kParallelGrain, std::forward<F>(fn));
}

/**
 * Dispatches fn(0), fn(1), ..., fn(n - 1) as individually claimed tasks.
 * Tasks are claimed in ascending index order (dynamic load balance for
 * coarse, unequal work items such as subtree executions); parallel whenever
 * n >= 2 and the pool is active.
 */
void parallel_for_each(std::uint64_t n,
                       const std::function<void(std::uint64_t)>& fn);

/**
 * Runs fn(block_index, begin, end) over fixed kReduceBlock-sized blocks of
 * [0, total).  The decomposition depends only on @p total, never on the
 * thread count, so per-block partial results can be combined in block order
 * for bit-reproducible reductions.  There are num_reduce_blocks(total)
 * blocks; block b covers [b * kReduceBlock, min(total, (b+1) * kReduceBlock)).
 */
void parallel_blocks(
    std::uint64_t total,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>&
        fn);

/** Number of blocks parallel_blocks() uses for @p total elements. */
std::uint64_t num_reduce_blocks(std::uint64_t total);

/**
 * Deterministic parallel sum: evaluates fn(begin, end) -> partial sum over
 * the fixed blocks of [0, total) and adds the partials in block order.
 * Bit-identical at any thread count.
 *
 * Template for the same reason as parallel_for: the serial fast path sums
 * the fixed blocks in block order inline (identical arithmetic to the
 * pooled path) without materializing a std::function.
 */
template <typename F>
inline double
parallel_sum(std::uint64_t total, F&& fn)
{
    const std::uint64_t nblocks = num_reduce_blocks(total);
    if (nblocks == 0) {
        return 0.0;
    }
    if (nblocks == 1) {
        return fn(std::uint64_t{0}, total);
    }
    if (num_threads() <= 1 || in_parallel_region()) {
        double sum = 0.0;
        for (std::uint64_t b = 0; b < nblocks; ++b) {
            const std::uint64_t begin = b * kReduceBlock;
            sum += fn(begin, std::min(total, begin + kReduceBlock));
        }
        return sum;
    }
    return detail::parallel_sum_fn(total, std::forward<F>(fn));
}

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_PARALLEL_H_
