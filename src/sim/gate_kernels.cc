#include "sim/gate_kernels.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/assert.h"

namespace tqsim::sim {

namespace {

void
check_qubit(const StateVector& state, int q)
{
    if (q < 0 || q >= state.num_qubits()) {
        throw std::out_of_range("kernel qubit index out of range");
    }
}

/** Inserts a zero bit at @p pos, shifting higher bits left. */
inline Index
insert_zero_bit(Index x, int pos)
{
    const Index low_mask = (Index{1} << pos) - 1;
    return ((x & ~low_mask) << 1) | (x & low_mask);
}

constexpr Complex kZero{0.0, 0.0};

}  // namespace

void
apply_1q_matrix(StateVector& state, int q, const Matrix& m)
{
    check_qubit(state, q);
    TQSIM_ASSERT(m.size() == 4);
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index size = state.size();
    for (Index base = 0; base < size; base += 2 * stride) {
        for (Index low = 0; low < stride; ++low) {
            const Index i0 = base + low;
            const Index i1 = i0 + stride;
            const Complex a0 = amps[i0];
            const Complex a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
apply_2q_matrix(StateVector& state, int q0, int q1, const Matrix& m)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    if (q0 == q1) {
        throw std::invalid_argument("apply_2q_matrix: identical qubits");
    }
    TQSIM_ASSERT(m.size() == 16);
    Complex* amps = state.data();
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    const int lo = std::min(q0, q1);
    const int hi = std::max(q0, q1);
    const Index quarter = state.size() >> 2;
    for (Index j = 0; j < quarter; ++j) {
        const Index i00 = insert_zero_bit(insert_zero_bit(j, lo), hi);
        const Index i01 = i00 | s0;  // q0 bit set -> matrix index 1
        const Index i10 = i00 | s1;  // q1 bit set -> matrix index 2
        const Index i11 = i00 | s0 | s1;
        const Complex a0 = amps[i00];
        const Complex a1 = amps[i01];
        const Complex a2 = amps[i10];
        const Complex a3 = amps[i11];
        amps[i00] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
        amps[i01] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
        amps[i10] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
        amps[i11] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
}

void
apply_3q_matrix(StateVector& state, int q0, int q1, int q2, const Matrix& m)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    check_qubit(state, q2);
    if (q0 == q1 || q1 == q2 || q0 == q2) {
        throw std::invalid_argument("apply_3q_matrix: identical qubits");
    }
    TQSIM_ASSERT(m.size() == 64);
    Complex* amps = state.data();
    int sorted[3] = {q0, q1, q2};
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    if (sorted[1] > sorted[2]) std::swap(sorted[1], sorted[2]);
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    const Index strides[3] = {Index{1} << q0, Index{1} << q1, Index{1} << q2};
    const Index eighth = state.size() >> 3;
    Complex in[8], out[8];
    for (Index j = 0; j < eighth; ++j) {
        Index base = insert_zero_bit(j, sorted[0]);
        base = insert_zero_bit(base, sorted[1]);
        base = insert_zero_bit(base, sorted[2]);
        Index idx[8];
        for (int local = 0; local < 8; ++local) {
            Index i = base;
            if (local & 1) i |= strides[0];
            if (local & 2) i |= strides[1];
            if (local & 4) i |= strides[2];
            idx[local] = i;
            in[local] = amps[i];
        }
        for (int r = 0; r < 8; ++r) {
            Complex acc = kZero;
            for (int c = 0; c < 8; ++c) {
                acc += m[r * 8 + c] * in[c];
            }
            out[r] = acc;
        }
        for (int local = 0; local < 8; ++local) {
            amps[idx[local]] = out[local];
        }
    }
}

void
apply_x(StateVector& state, int q)
{
    check_qubit(state, q);
    Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index size = state.size();
    for (Index base = 0; base < size; base += 2 * stride) {
        for (Index low = 0; low < stride; ++low) {
            std::swap(amps[base + low], amps[base + low + stride]);
        }
    }
}

void
apply_diag_1q(StateVector& state, int q, Complex d0, Complex d1)
{
    check_qubit(state, q);
    Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index size = state.size();
    for (Index base = 0; base < size; base += 2 * stride) {
        for (Index low = 0; low < stride; ++low) {
            amps[base + low] *= d0;
            amps[base + low + stride] *= d1;
        }
    }
}

void
apply_diag_2q(StateVector& state, int q0, int q1, Complex d00, Complex d01,
              Complex d10, Complex d11)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    Complex* amps = state.data();
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    const Index size = state.size();
    for (Index i = 0; i < size; ++i) {
        const bool b0 = (i & s0) != 0;
        const bool b1 = (i & s1) != 0;
        amps[i] *= b1 ? (b0 ? d11 : d10) : (b0 ? d01 : d00);
    }
}

void
apply_cx(StateVector& state, int control, int target)
{
    check_qubit(state, control);
    check_qubit(state, target);
    Complex* amps = state.data();
    const Index cm = Index{1} << control;
    const Index tm = Index{1} << target;
    const Index size = state.size();
    // Iterate pairs (i, i|tm) with control bit set and target bit clear.
    for (Index i = 0; i < size; ++i) {
        if ((i & cm) && !(i & tm)) {
            std::swap(amps[i], amps[i | tm]);
        }
    }
}

void
apply_cz(StateVector& state, int a, int b)
{
    apply_cphase(state, a, b, Complex{-1.0, 0.0});
}

void
apply_cphase(StateVector& state, int a, int b, Complex phase)
{
    check_qubit(state, a);
    check_qubit(state, b);
    Complex* amps = state.data();
    const Index mask = (Index{1} << a) | (Index{1} << b);
    const Index size = state.size();
    for (Index i = 0; i < size; ++i) {
        if ((i & mask) == mask) {
            amps[i] *= phase;
        }
    }
}

void
apply_swap(StateVector& state, int a, int b)
{
    check_qubit(state, a);
    check_qubit(state, b);
    Complex* amps = state.data();
    const Index ma = Index{1} << a;
    const Index mb = Index{1} << b;
    const Index size = state.size();
    // Swap amplitudes where bit a = 1, bit b = 0 with the mirrored index.
    for (Index i = 0; i < size; ++i) {
        if ((i & ma) && !(i & mb)) {
            std::swap(amps[i], amps[(i & ~ma) | mb]);
        }
    }
}

void
apply_ccx(StateVector& state, int c0, int c1, int t)
{
    check_qubit(state, c0);
    check_qubit(state, c1);
    check_qubit(state, t);
    Complex* amps = state.data();
    const Index cm = (Index{1} << c0) | (Index{1} << c1);
    const Index tm = Index{1} << t;
    const Index size = state.size();
    for (Index i = 0; i < size; ++i) {
        if (((i & cm) == cm) && !(i & tm)) {
            std::swap(amps[i], amps[i | tm]);
        }
    }
}

void
scale_state(StateVector& state, Complex factor)
{
    Complex* amps = state.data();
    const Index size = state.size();
    for (Index i = 0; i < size; ++i) {
        amps[i] *= factor;
    }
}

void
apply_gate(StateVector& state, const Gate& gate)
{
    const auto& q = gate.qubits();
    switch (gate.kind()) {
      case GateKind::kI:
        return;
      case GateKind::kX:
        apply_x(state, q[0]);
        return;
      case GateKind::kZ:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {-1.0, 0.0});
        return;
      case GateKind::kS:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {0.0, 1.0});
        return;
      case GateKind::kSdg:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {0.0, -1.0});
        return;
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kRZ:
      case GateKind::kPhase: {
        const Matrix m = gate.matrix();
        apply_diag_1q(state, q[0], m[0], m[3]);
        return;
      }
      case GateKind::kCX:
        apply_cx(state, q[0], q[1]);
        return;
      case GateKind::kCZ:
        apply_cz(state, q[0], q[1]);
        return;
      case GateKind::kCPhase: {
        const Matrix m = gate.matrix();
        apply_cphase(state, q[0], q[1], m[15]);
        return;
      }
      case GateKind::kSWAP:
        apply_swap(state, q[0], q[1]);
        return;
      case GateKind::kRZZ: {
        const Matrix m = gate.matrix();
        apply_diag_2q(state, q[0], q[1], m[0], m[5], m[10], m[15]);
        return;
      }
      case GateKind::kCCX:
        apply_ccx(state, q[0], q[1], q[2]);
        return;
      default:
        break;
    }
    // Dense fallback by arity.
    switch (gate.arity()) {
      case 1:
        apply_1q_matrix(state, q[0], gate.matrix());
        return;
      case 2:
        apply_2q_matrix(state, q[0], q[1], gate.matrix());
        return;
      case 3:
        apply_3q_matrix(state, q[0], q[1], q[2], gate.matrix());
        return;
      default:
        throw std::invalid_argument("apply_gate: unsupported arity");
    }
}

double
kraus_probability_1q(const StateVector& state, int q, const Matrix& k)
{
    check_qubit(state, q);
    TQSIM_ASSERT(k.size() == 4);
    const Complex m00 = k[0], m01 = k[1], m10 = k[2], m11 = k[3];
    const Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index size = state.size();
    double p = 0.0;
    for (Index base = 0; base < size; base += 2 * stride) {
        for (Index low = 0; low < stride; ++low) {
            const Complex a0 = amps[base + low];
            const Complex a1 = amps[base + low + stride];
            p += std::norm(m00 * a0 + m01 * a1);
            p += std::norm(m10 * a0 + m11 * a1);
        }
    }
    return p;
}

double
kraus_probability_2q(const StateVector& state, int q0, int q1, const Matrix& k)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    TQSIM_ASSERT(k.size() == 16);
    const Complex* amps = state.data();
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    const int lo = std::min(q0, q1);
    const int hi = std::max(q0, q1);
    const Index quarter = state.size() >> 2;
    double p = 0.0;
    for (Index j = 0; j < quarter; ++j) {
        const Index i00 = insert_zero_bit(insert_zero_bit(j, lo), hi);
        const Complex a[4] = {amps[i00], amps[i00 | s0], amps[i00 | s1],
                              amps[i00 | s0 | s1]};
        for (int r = 0; r < 4; ++r) {
            Complex acc = kZero;
            for (int c = 0; c < 4; ++c) {
                acc += k[r * 4 + c] * a[c];
            }
            p += std::norm(acc);
        }
    }
    return p;
}

}  // namespace tqsim::sim
