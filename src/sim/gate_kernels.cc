#include "sim/gate_kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sim/parallel.h"
#include "util/assert.h"

/** No-alias qualifier for the hot kernel loops (GCC/Clang spelling). */
#if defined(__GNUC__) || defined(__clang__)
#define TQSIM_RESTRICT __restrict__
#else
#define TQSIM_RESTRICT
#endif

namespace tqsim::sim {

namespace {

void
check_qubit(const StateVector& state, int q)
{
    if (q < 0 || q >= state.num_qubits()) {
        throw std::out_of_range("kernel qubit index out of range");
    }
}

constexpr Complex kZero{0.0, 0.0};

/** Runtime override of the fused-diagonal switch-over; 0 = unset. */
std::atomic<Index> g_fused_diag_override{0};

/**
 * The vectorizable inner body of the dense 1q kernel over pair indices
 * [begin, end): within a pair block the two amplitude rows are contiguous,
 * so the loop is stride-split into restrict-qualified runs the compiler can
 * unroll and vectorize (no per-element bit surgery).
 */
inline void
dense_1q_pairs(Complex* amps, int q, Index begin, Index end, Complex m00,
               Complex m01, Complex m10, Complex m11)
{
    const Index stride = Index{1} << q;
    if (q == 0) {
        // Pairs are adjacent: one contiguous sweep.
        Complex* TQSIM_RESTRICT a = amps + 2 * begin;
        for (Index p = begin; p < end; ++p, a += 2) {
            const Complex a0 = a[0];
            const Complex a1 = a[1];
            a[0] = m00 * a0 + m01 * a1;
            a[1] = m10 * a0 + m11 * a1;
        }
        return;
    }
    Index p = begin;
    while (p < end) {
        const Index offset = p & (stride - 1);
        const Index run = std::min<Index>(end - p, stride - offset);
        Complex* TQSIM_RESTRICT a0 = amps + insert_zero_bit(p, q);
        Complex* TQSIM_RESTRICT a1 = a0 + stride;
        for (Index k = 0; k < run; ++k) {
            const Complex x0 = a0[k];
            const Complex x1 = a1[k];
            a0[k] = m00 * x0 + m01 * x1;
            a1[k] = m10 * x0 + m11 * x1;
        }
        p += run;
    }
}

}  // namespace

void
apply_1q_matrix(StateVector& state, int q, const Matrix& m)
{
    check_qubit(state, q);
    TQSIM_ASSERT(m.size() == 4);
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    Complex* amps = state.data();
    const Index pairs = state.size() >> 1;
    parallel_for(pairs, [=](Index begin, Index end) {
        dense_1q_pairs(amps, q, begin, end, m00, m01, m10, m11);
    });
}

void
apply_controlled_1q(StateVector& state, int control, int target,
                    const Matrix& m)
{
    check_qubit(state, control);
    check_qubit(state, target);
    if (control == target) {
        throw std::invalid_argument("apply_controlled_1q: identical qubits");
    }
    TQSIM_ASSERT(m.size() == 4);
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    Complex* amps = state.data();
    const Index cm = Index{1} << control;
    const Index tm = Index{1} << target;
    const int lo = std::min(control, target);
    const int hi = std::max(control, target);
    const Index quarter = state.size() >> 2;
    // Enumerate indices with the control bit set and the target bit clear:
    // half the touched amplitudes of the dense 4x4 path.
    parallel_for(quarter, [=](Index begin, Index end) {
        for (Index j = begin; j < end; ++j) {
            const Index i0 = insert_two_zero_bits(j, lo, hi) | cm;
            const Index i1 = i0 | tm;
            const Complex a0 = amps[i0];
            const Complex a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    });
}

void
apply_2q_matrix(StateVector& state, int q0, int q1, const Matrix& m)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    if (q0 == q1) {
        throw std::invalid_argument("apply_2q_matrix: identical qubits");
    }
    TQSIM_ASSERT(m.size() == 16);
    Complex* amps = state.data();
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    const int lo = std::min(q0, q1);
    const int hi = std::max(q0, q1);
    const Index quarter = state.size() >> 2;
    // Hoist the matrix into locals: the amplitude writes cannot alias them,
    // so the compiler keeps all 16 coefficients in registers.
    Complex c[16];
    std::copy(m.begin(), m.end(), c);
    parallel_for(quarter, [&c, amps, s0, s1, lo, hi](Index begin, Index end) {
        Complex* TQSIM_RESTRICT a = amps;
        for (Index j = begin; j < end; ++j) {
            const Index i00 = insert_two_zero_bits(j, lo, hi);
            const Index i01 = i00 | s0;  // q0 bit set -> matrix index 1
            const Index i10 = i00 | s1;  // q1 bit set -> matrix index 2
            const Index i11 = i00 | s0 | s1;
            const Complex a0 = a[i00];
            const Complex a1 = a[i01];
            const Complex a2 = a[i10];
            const Complex a3 = a[i11];
            a[i00] = c[0] * a0 + c[1] * a1 + c[2] * a2 + c[3] * a3;
            a[i01] = c[4] * a0 + c[5] * a1 + c[6] * a2 + c[7] * a3;
            a[i10] = c[8] * a0 + c[9] * a1 + c[10] * a2 + c[11] * a3;
            a[i11] = c[12] * a0 + c[13] * a1 + c[14] * a2 + c[15] * a3;
        }
    });
}

void
apply_3q_matrix(StateVector& state, int q0, int q1, int q2, const Matrix& m)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    check_qubit(state, q2);
    if (q0 == q1 || q1 == q2 || q0 == q2) {
        throw std::invalid_argument("apply_3q_matrix: identical qubits");
    }
    TQSIM_ASSERT(m.size() == 64);
    Complex* amps = state.data();
    int sorted[3] = {q0, q1, q2};
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    if (sorted[1] > sorted[2]) std::swap(sorted[1], sorted[2]);
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    const Index strides[3] = {Index{1} << q0, Index{1} << q1, Index{1} << q2};
    const int p0 = sorted[0], p1 = sorted[1], p2 = sorted[2];
    const Index eighth = state.size() >> 3;
    parallel_for(
        eighth, [&m, amps, strides, p0, p1, p2](Index begin, Index end) {
            Complex in[8], out[8];
            Index idx[8];
            for (Index j = begin; j < end; ++j) {
                Index base = insert_zero_bit(j, p0);
                base = insert_zero_bit(base, p1);
                base = insert_zero_bit(base, p2);
                for (int local = 0; local < 8; ++local) {
                    Index i = base;
                    if (local & 1) i |= strides[0];
                    if (local & 2) i |= strides[1];
                    if (local & 4) i |= strides[2];
                    idx[local] = i;
                    in[local] = amps[i];
                }
                for (int r = 0; r < 8; ++r) {
                    Complex acc = kZero;
                    for (int c = 0; c < 8; ++c) {
                        acc += m[r * 8 + c] * in[c];
                    }
                    out[r] = acc;
                }
                for (int local = 0; local < 8; ++local) {
                    amps[idx[local]] = out[local];
                }
            }
        });
}

namespace {

/**
 * The k = 4 / 5 gather/scatter body: enumerate the 2^(n-k) base indices
 * (all operand bits clear) in index order, gather the 2^k amplitudes of
 * each group, multiply by the dense matrix, scatter back.  K is a template
 * parameter so the gather/matvec/scatter loops have compile-time trip
 * counts the optimizer fully unrolls or vectorizes.
 */
template <int K>
void
apply_dense_kq_impl(StateVector& state, const int* qubits, const Matrix& m)
{
    constexpr int kDim = 1 << K;
    int sorted[K];
    Index strides[K];
    for (int i = 0; i < K; ++i) {
        sorted[i] = qubits[i];
        strides[i] = Index{1} << qubits[i];
    }
    std::sort(sorted, sorted + K);
    // offsets[l] = the index bits of group-local amplitude l (bit i of l is
    // operand i's bit, the matrix basis convention).
    Index offsets[kDim];
    for (int l = 0; l < kDim; ++l) {
        Index off = 0;
        for (int i = 0; i < K; ++i) {
            if (l & (1 << i)) {
                off |= strides[i];
            }
        }
        offsets[l] = off;
    }
    Complex* amps = state.data();
    const Index groups = state.size() >> K;
    parallel_for(groups, [&m, amps, &sorted, &offsets](Index begin,
                                                       Index end) {
        // Local matrix copy: the amplitude writes cannot alias it, so rows
        // stay register/cache resident across the group loop.
        Complex c[kDim * kDim];
        std::copy(m.begin(), m.end(), c);
        const Complex* TQSIM_RESTRICT cm = c;
        Complex in[kDim], out[kDim];
        Index idx[kDim];
        for (Index j = begin; j < end; ++j) {
            Index base = j;
            for (int s = 0; s < K; ++s) {
                base = insert_zero_bit(base, sorted[s]);
            }
            for (int l = 0; l < kDim; ++l) {
                idx[l] = base | offsets[l];
                in[l] = amps[idx[l]];
            }
            for (int r = 0; r < kDim; ++r) {
                Complex acc = kZero;
                for (int col = 0; col < kDim; ++col) {
                    acc += cm[r * kDim + col] * in[col];
                }
                out[r] = acc;
            }
            for (int l = 0; l < kDim; ++l) {
                amps[idx[l]] = out[l];
            }
        }
    });
}

}  // namespace

void
apply_dense_kq(StateVector& state, const int* qubits, int k, const Matrix& m)
{
    if (k < 1 || k > 5) {
        throw std::invalid_argument("apply_dense_kq: k must be in [1, 5]");
    }
    for (int i = 0; i < k; ++i) {
        check_qubit(state, qubits[i]);
        for (int j = i + 1; j < k; ++j) {
            if (qubits[i] == qubits[j]) {
                throw std::invalid_argument(
                    "apply_dense_kq: identical qubits");
            }
        }
    }
    TQSIM_ASSERT(m.size() == (std::size_t{1} << k) * (std::size_t{1} << k));
    switch (k) {
      case 1:
        apply_1q_matrix(state, qubits[0], m);
        return;
      case 2:
        apply_2q_matrix(state, qubits[0], qubits[1], m);
        return;
      case 3:
        apply_3q_matrix(state, qubits[0], qubits[1], qubits[2], m);
        return;
      case 4:
        apply_dense_kq_impl<4>(state, qubits, m);
        return;
      default:
        apply_dense_kq_impl<5>(state, qubits, m);
        return;
    }
}

void
apply_x(StateVector& state, int q)
{
    check_qubit(state, q);
    Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index pairs = state.size() >> 1;
    parallel_for(pairs, [=](Index begin, Index end) {
        for (Index p = begin; p < end; ++p) {
            const Index i0 = insert_zero_bit(p, q);
            std::swap(amps[i0], amps[i0 | stride]);
        }
    });
}

void
apply_diag_1q(StateVector& state, int q, Complex d0, Complex d1)
{
    check_qubit(state, q);
    Complex* amps = state.data();
    const Index stride = Index{1} << q;
    const Index pairs = state.size() >> 1;
    parallel_for(pairs, [=](Index begin, Index end) {
        if (q == 0) {
            Complex* TQSIM_RESTRICT a = amps + 2 * begin;
            for (Index p = begin; p < end; ++p, a += 2) {
                a[0] *= d0;
                a[1] *= d1;
            }
            return;
        }
        Index p = begin;
        while (p < end) {
            const Index offset = p & (stride - 1);
            const Index run = std::min<Index>(end - p, stride - offset);
            Complex* TQSIM_RESTRICT a0 = amps + insert_zero_bit(p, q);
            Complex* TQSIM_RESTRICT a1 = a0 + stride;
            for (Index k = 0; k < run; ++k) {
                a0[k] *= d0;
                a1[k] *= d1;
            }
            p += run;
        }
    });
}

Index
fused_diag_threshold()
{
    // Below the threshold the amplitudes live in cache, so T specialized
    // single-term passes beat one fused pass whose per-amplitude factor
    // product is a T-deep multiply chain.  Past it the fused pass wins on
    // memory traffic (amplitudes are loaded/stored once instead of T
    // times); 2^22 amps = 64 MiB is beyond typical LLCs.
    const Index override = g_fused_diag_override.load(std::memory_order_relaxed);
    if (override != 0) {
        return override;
    }
    static const Index env_default = [] {
        // Read once at first use, before any worker threads can touch the
        // environment.  NOLINTNEXTLINE(concurrency-mt-unsafe)
        if (const char* v = std::getenv("TQSIM_FUSED_DIAG_THRESHOLD")) {
            char* end = nullptr;
            const unsigned long long parsed = std::strtoull(v, &end, 10);
            if (end != v && *end == '\0' && parsed > 0) {
                return static_cast<Index>(parsed);
            }
        }
        return Index{1} << 22;
    }();
    return env_default;
}

void
set_fused_diag_threshold(Index min_amps)
{
    g_fused_diag_override.store(min_amps, std::memory_order_relaxed);
}

void
apply_diag_batch(StateVector& state, const DiagTerm* terms,
                 std::size_t num_terms, Index fused_min_amps)
{
    // The switch-over depends only on the state size (never the thread
    // count or data), so results stay deterministic for a given run.
    if (fused_min_amps == 0) {
        fused_min_amps = fused_diag_threshold();
    }
    if (num_terms == 0) {
        return;
    }
    if (num_terms == 1 || state.size() < fused_min_amps) {
        for (std::size_t t = 0; t < num_terms; ++t) {
            const DiagTerm& term = terms[t];
            const int q0 = std::countr_zero(term.mask0);
            if (term.mask1 == 0) {
                apply_diag_1q(state, q0, term.d[0], term.d[1]);
            } else {
                const int q1 = std::countr_zero(term.mask1);
                if (term.d[0] == Complex{1.0, 0.0} &&
                    term.d[1] == Complex{1.0, 0.0} &&
                    term.d[2] == Complex{1.0, 0.0}) {
                    apply_cphase(state, q0, q1, term.d[3]);
                } else {
                    apply_diag_2q(state, q0, q1, term.d[0], term.d[1],
                                  term.d[2], term.d[3]);
                }
            }
        }
        return;
    }
    apply_diag_batch_fused(state, terms, num_terms);
}

void
apply_diag_batch_fused(StateVector& state, const DiagTerm* terms,
                       std::size_t num_terms)
{
    if (num_terms == 0) {
        return;
    }
    Complex* amps = state.data();
    parallel_for(state.size(), [=](Index begin, Index end) {
        Complex* TQSIM_RESTRICT a = amps;
        for (Index i = begin; i < end; ++i) {
            a[i] *= diag_batch_factor(terms, num_terms, i);
        }
    });
}

void
apply_diag_2q(StateVector& state, int q0, int q1, Complex d00, Complex d01,
              Complex d10, Complex d11)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    Complex* amps = state.data();
    const Index s0 = Index{1} << q0;
    const Index s1 = Index{1} << q1;
    parallel_for(state.size(), [=](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) {
            const bool b0 = (i & s0) != 0;
            const bool b1 = (i & s1) != 0;
            amps[i] *= b1 ? (b0 ? d11 : d10) : (b0 ? d01 : d00);
        }
    });
}

void
apply_cx(StateVector& state, int control, int target)
{
    check_qubit(state, control);
    check_qubit(state, target);
    Complex* amps = state.data();
    const Index cm = Index{1} << control;
    const Index tm = Index{1} << target;
    const int lo = std::min(control, target);
    const int hi = std::max(control, target);
    const Index quarter = state.size() >> 2;
    // Enumerate indices with control bit set and target bit clear.
    parallel_for(quarter, [=](Index begin, Index end) {
        for (Index j = begin; j < end; ++j) {
            const Index i = insert_two_zero_bits(j, lo, hi) | cm;
            std::swap(amps[i], amps[i | tm]);
        }
    });
}

void
apply_cz(StateVector& state, int a, int b)
{
    apply_cphase(state, a, b, Complex{-1.0, 0.0});
}

void
apply_cphase(StateVector& state, int a, int b, Complex phase)
{
    check_qubit(state, a);
    check_qubit(state, b);
    if (a == b) {
        throw std::invalid_argument("apply_cphase: identical qubits");
    }
    Complex* amps = state.data();
    const Index mask = (Index{1} << a) | (Index{1} << b);
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    const Index quarter = state.size() >> 2;
    // Enumerate indices with both bits set.
    parallel_for(quarter, [=](Index begin, Index end) {
        for (Index j = begin; j < end; ++j) {
            amps[insert_two_zero_bits(j, lo, hi) | mask] *= phase;
        }
    });
}

void
apply_swap(StateVector& state, int a, int b)
{
    check_qubit(state, a);
    check_qubit(state, b);
    if (a == b) {
        return;
    }
    Complex* amps = state.data();
    const Index ma = Index{1} << a;
    const Index mb = Index{1} << b;
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    const Index quarter = state.size() >> 2;
    // Swap amplitudes where bit a = 1, bit b = 0 with the mirrored index.
    parallel_for(quarter, [=](Index begin, Index end) {
        for (Index j = begin; j < end; ++j) {
            const Index base = insert_two_zero_bits(j, lo, hi);
            std::swap(amps[base | ma], amps[base | mb]);
        }
    });
}

void
apply_ccx(StateVector& state, int c0, int c1, int t)
{
    check_qubit(state, c0);
    check_qubit(state, c1);
    check_qubit(state, t);
    if (c0 == c1 || c0 == t || c1 == t) {
        throw std::invalid_argument("apply_ccx: identical qubits");
    }
    Complex* amps = state.data();
    const Index cm = (Index{1} << c0) | (Index{1} << c1);
    const Index tm = Index{1} << t;
    int sorted[3] = {c0, c1, t};
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    if (sorted[1] > sorted[2]) std::swap(sorted[1], sorted[2]);
    if (sorted[0] > sorted[1]) std::swap(sorted[0], sorted[1]);
    const int p0 = sorted[0], p1 = sorted[1], p2 = sorted[2];
    const Index eighth = state.size() >> 3;
    // Enumerate indices with both control bits set and the target bit clear.
    parallel_for(eighth, [=](Index begin, Index end) {
        for (Index j = begin; j < end; ++j) {
            Index i = insert_zero_bit(j, p0);
            i = insert_zero_bit(i, p1);
            i = insert_zero_bit(i, p2);
            i |= cm;
            std::swap(amps[i], amps[i | tm]);
        }
    });
}

void
scale_state(StateVector& state, Complex factor)
{
    Complex* amps = state.data();
    parallel_for(state.size(), [=](Index begin, Index end) {
        for (Index i = begin; i < end; ++i) {
            amps[i] *= factor;
        }
    });
}

void
apply_gate(StateVector& state, const Gate& gate)
{
    const auto& q = gate.qubits();
    switch (gate.kind()) {
      case GateKind::kI:
        return;
      case GateKind::kX:
        apply_x(state, q[0]);
        return;
      case GateKind::kZ:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {-1.0, 0.0});
        return;
      case GateKind::kS:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {0.0, 1.0});
        return;
      case GateKind::kSdg:
        apply_diag_1q(state, q[0], {1.0, 0.0}, {0.0, -1.0});
        return;
      case GateKind::kT:
      case GateKind::kTdg:
      case GateKind::kRZ:
      case GateKind::kPhase: {
        const Matrix m = gate.matrix();
        apply_diag_1q(state, q[0], m[0], m[3]);
        return;
      }
      case GateKind::kCX:
        apply_cx(state, q[0], q[1]);
        return;
      case GateKind::kCZ:
        apply_cz(state, q[0], q[1]);
        return;
      case GateKind::kCPhase: {
        const Matrix m = gate.matrix();
        apply_cphase(state, q[0], q[1], m[15]);
        return;
      }
      case GateKind::kSWAP:
        apply_swap(state, q[0], q[1]);
        return;
      case GateKind::kRZZ: {
        const Matrix m = gate.matrix();
        apply_diag_2q(state, q[0], q[1], m[0], m[5], m[10], m[15]);
        return;
      }
      case GateKind::kCCX:
        apply_ccx(state, q[0], q[1], q[2]);
        return;
      default:
        break;
    }
    // Dense fallback by arity.
    switch (gate.arity()) {
      case 1:
        apply_1q_matrix(state, q[0], gate.matrix());
        return;
      case 2:
        apply_2q_matrix(state, q[0], q[1], gate.matrix());
        return;
      case 3:
        apply_3q_matrix(state, q[0], q[1], q[2], gate.matrix());
        return;
      case 4:
      case 5:
        apply_dense_kq(state, q.data(), gate.arity(), gate.matrix());
        return;
      default:
        throw std::invalid_argument("apply_gate: unsupported arity");
    }
}

double
kraus_probability_1q(const StateVector& state, int q, const Matrix& k)
{
    check_qubit(state, q);
    TQSIM_ASSERT(k.size() == 4);
    const Complex* amps = state.data();
    return kraus_probability_1q_over(
        state.size(), q, k, [amps](Index i) { return amps[i]; });
}

double
kraus_probability_2q(const StateVector& state, int q0, int q1, const Matrix& k)
{
    check_qubit(state, q0);
    check_qubit(state, q1);
    TQSIM_ASSERT(k.size() == 16);
    const Complex* amps = state.data();
    return kraus_probability_2q_over(
        state.size(), q0, q1, k, [amps](Index i) { return amps[i]; });
}

}  // namespace tqsim::sim
