#ifndef TQSIM_SIM_CIRCUIT_H_
#define TQSIM_SIM_CIRCUIT_H_

/**
 * @file
 * Ordered gate-list circuit representation.
 *
 * "Width" is the qubit count and "length" is the gate count, following the
 * paper's terminology (Sec. 2.1).  TQSim's partitioner slices circuits into
 * contiguous gate ranges via Circuit::slice().
 */

#include <cstddef>
#include <string>
#include <vector>

#include "sim/gate.h"
#include "sim/state_vector.h"

namespace tqsim::sim {

/** An ordered sequence of gates on a fixed-width qubit register. */
class Circuit
{
  public:
    /** Creates an empty circuit on @p num_qubits qubits. */
    explicit Circuit(int num_qubits, std::string name = "");

    /** Returns the circuit width (qubit count). */
    int num_qubits() const { return num_qubits_; }

    /** Returns the circuit's human-readable name. */
    const std::string& name() const { return name_; }

    /** Sets the circuit's human-readable name. */
    void set_name(std::string name) { name_ = std::move(name); }

    /** Appends a gate; its qubits must fit the register. */
    Circuit& append(Gate gate);

    /** @name Fluent single-gate helpers (used heavily by the generators)
     *  @{ */
    Circuit& x(int q) { return append(Gate::x(q)); }
    Circuit& y(int q) { return append(Gate::y(q)); }
    Circuit& z(int q) { return append(Gate::z(q)); }
    Circuit& h(int q) { return append(Gate::h(q)); }
    Circuit& s(int q) { return append(Gate::s(q)); }
    Circuit& sdg(int q) { return append(Gate::sdg(q)); }
    Circuit& t(int q) { return append(Gate::t(q)); }
    Circuit& tdg(int q) { return append(Gate::tdg(q)); }
    Circuit& sx(int q) { return append(Gate::sx(q)); }
    Circuit& rx(int q, double a) { return append(Gate::rx(q, a)); }
    Circuit& ry(int q, double a) { return append(Gate::ry(q, a)); }
    Circuit& rz(int q, double a) { return append(Gate::rz(q, a)); }
    Circuit& phase(int q, double a) { return append(Gate::phase(q, a)); }
    Circuit& u3(int q, double t_, double p_, double l_)
    {
        return append(Gate::u3(q, t_, p_, l_));
    }
    Circuit& cx(int c, int t_) { return append(Gate::cx(c, t_)); }
    Circuit& cz(int a, int b) { return append(Gate::cz(a, b)); }
    Circuit& cphase(int a, int b, double l) { return append(Gate::cphase(a, b, l)); }
    Circuit& swap(int a, int b) { return append(Gate::swap(a, b)); }
    Circuit& rzz(int a, int b, double t_) { return append(Gate::rzz(a, b, t_)); }
    Circuit& fsim(int a, int b, double t_, double p_)
    {
        return append(Gate::fsim(a, b, t_, p_));
    }
    Circuit& ccx(int c0, int c1, int t_) { return append(Gate::ccx(c0, c1, t_)); }
    /** @} */

    /** Returns the gate list in order. */
    const std::vector<Gate>& gates() const { return gates_; }

    /** Returns the gate at position @p i. */
    const Gate& gate(std::size_t i) const { return gates_.at(i); }

    /** Returns the circuit length (gate count). */
    std::size_t size() const { return gates_.size(); }

    /** Returns true when the circuit has no gates. */
    bool empty() const { return gates_.empty(); }

    /** Returns the number of gates acting on >= 2 qubits. */
    std::size_t multi_qubit_gate_count() const;

    /** Returns the layered depth (greedy as-soon-as-possible scheduling). */
    int depth() const;

    /**
     * Returns the contiguous subcircuit [begin, end) as a new circuit of the
     * same width.  This is TQSim's partitioning primitive.
     */
    Circuit slice(std::size_t begin, std::size_t end) const;

    /** Returns the adjoint circuit (gates reversed and daggered). */
    Circuit inverse() const;

    /** Appends all gates of @p other (widths must match). */
    Circuit& operator+=(const Circuit& other);

    /** Applies every gate in order to @p state (noise-free execution). */
    void apply_to(StateVector& state) const;

    /** Runs the circuit on |0...0> and returns the final state. */
    StateVector simulate_ideal() const;

    /** Returns a multi-line listing of the circuit. */
    std::string to_string() const;

  private:
    int num_qubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_CIRCUIT_H_
