#ifndef TQSIM_SIM_GATE_H_
#define TQSIM_SIM_GATE_H_

/**
 * @file
 * Gate representation: named gate kinds, parameters, and dense matrices.
 *
 * Matrix convention: for a gate acting on qubits (qubits[0], qubits[1], ...),
 * the dense matrix is indexed by basis states where qubits[0] contributes
 * bit 0, qubits[1] contributes bit 1, and so on.  Matrices are row-major and
 * columns are inputs: out[r] = sum_c M[r * D + c] * in[c].
 */

#include <string>
#include <vector>

#include "sim/types.h"

namespace tqsim::sim {

/** Enumerates every named gate the engine knows natively. */
enum class GateKind {
    kI,
    kX,
    kY,
    kZ,
    kH,
    kS,
    kSdg,
    kT,
    kTdg,
    kSX,
    kSXdg,
    kRX,
    kRY,
    kRZ,
    kPhase,
    kU3,
    kCX,
    kCZ,
    kCPhase,
    kSWAP,
    kISwap,
    kRZZ,
    kFSim,
    kCCX,
    kUnitary1q,
    kUnitary2q,
    /** Dense k-qubit unitary, 3 <= k <= 5 (fusion cluster products). */
    kUnitaryKq,
};

/** Returns the lower-case mnemonic for a gate kind (e.g. "cx"). */
std::string gate_kind_name(GateKind kind);

/** Returns the number of qubits a gate kind acts on, or -1 for
 *  kUnitaryKq (whose arity is per-instance: the qubit-list length). */
int gate_kind_arity(GateKind kind);

/** Returns the number of real parameters a gate kind requires. */
int gate_kind_param_count(GateKind kind);

/**
 * One circuit operation: a kind, target qubits, optional angle parameters,
 * and (for kUnitary1q / kUnitary2q) an explicit matrix.
 *
 * Construct via the static factories (Gate::h(0), Gate::cx(0, 1), ...) which
 * validate arity and parameter counts.
 */
class Gate
{
  public:
    /** @name Single-qubit factories
     *  @{ */
    static Gate i(int q);
    static Gate x(int q);
    static Gate y(int q);
    static Gate z(int q);
    static Gate h(int q);
    static Gate s(int q);
    static Gate sdg(int q);
    static Gate t(int q);
    static Gate tdg(int q);
    static Gate sx(int q);
    static Gate sxdg(int q);
    static Gate rx(int q, double theta);
    static Gate ry(int q, double theta);
    static Gate rz(int q, double theta);
    static Gate phase(int q, double lambda);
    static Gate u3(int q, double theta, double phi, double lambda);
    /** Arbitrary 1q operator from a row-major 2x2 matrix. */
    static Gate unitary1q(int q, Matrix m, std::string label = "u1q");
    /** @} */

    /** @name Two- and three-qubit factories
     *  @{ */
    static Gate cx(int control, int target);
    static Gate cz(int a, int b);
    static Gate cphase(int a, int b, double lambda);
    static Gate swap(int a, int b);
    static Gate iswap(int a, int b);
    static Gate rzz(int a, int b, double theta);
    static Gate fsim(int a, int b, double theta, double phi);
    static Gate ccx(int c0, int c1, int target);
    /** Arbitrary 2q operator from a row-major 4x4 matrix. */
    static Gate unitary2q(int q0, int q1, Matrix m, std::string label = "u2q");
    /** Arbitrary k-qubit operator (3 <= k <= 5) from a row-major
     *  2^k x 2^k matrix; qubits[i] contributes bit i of the basis index.
     *  k = 1 / 2 delegate to unitary1q / unitary2q so every width has one
     *  entry point (fusion emits cluster products through this). */
    static Gate unitary_kq(std::vector<int> qubits, Matrix m,
                           std::string label = "ukq");
    /** @} */

    /** Returns the gate kind. */
    GateKind kind() const { return kind_; }

    /** Returns the qubits the gate acts on, bit-0 first. */
    const std::vector<int>& qubits() const { return qubits_; }

    /** Returns the angle parameters (may be empty). */
    const std::vector<double>& params() const { return params_; }

    /** Returns how many qubits this gate touches. */
    int arity() const { return static_cast<int>(qubits_.size()); }

    /** Returns true for gates acting on two or more qubits. */
    bool is_multi_qubit() const { return arity() >= 2; }

    /** Returns true if the dense matrix is diagonal. */
    bool is_diagonal() const;

    /** Returns the dense row-major matrix (2x2 / 4x4 / 8x8). */
    Matrix matrix() const;

    /** Returns the adjoint gate (inverse for unitaries). */
    Gate dagger() const;

    /** Returns the mnemonic, e.g. "cx" or a custom unitary's label. */
    std::string name() const;

    /** Returns a debug string like "cx q1,q3" or "rz(0.785) q0". */
    std::string to_string() const;

    /** Remaps qubit indices through @p mapping (old index -> new index). */
    Gate remapped(const std::vector<int>& mapping) const;

    /** Structural equality: kind, qubits, params, and custom matrix. */
    bool operator==(const Gate& other) const;

  private:
    Gate(GateKind kind, std::vector<int> qubits, std::vector<double> params,
         Matrix custom = {}, std::string label = {});

    GateKind kind_;
    std::vector<int> qubits_;
    std::vector<double> params_;
    Matrix custom_;      // only for kUnitary1q / kUnitary2q
    std::string label_;  // only for custom unitaries
};

/**
 * Expands a gate to the full 2^n x 2^n unitary on an @p num_qubits register.
 * Intended for tests and small reference computations only (n <= ~12).
 */
Matrix expand_gate(const Gate& gate, int num_qubits);

/** Multiplies two row-major square matrices of dimension @p d. */
Matrix matmul(const Matrix& a, const Matrix& b, std::size_t d);

/** Returns the conjugate transpose of a row-major square matrix. */
Matrix matrix_dagger(const Matrix& m, std::size_t d);

/** Returns true if @p m (dimension d) is unitary within @p tol. */
bool is_unitary(const Matrix& m, std::size_t d, double tol = 1e-9);

}  // namespace tqsim::sim

#endif  // TQSIM_SIM_GATE_H_
