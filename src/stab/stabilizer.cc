#include "stab/stabilizer.h"

#include <stdexcept>

#include "noise/trajectory.h"
#include "util/assert.h"

namespace tqsim::stab {

using sim::Gate;
using sim::GateKind;

StabilizerState::StabilizerState(int num_qubits) : n_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 4096) {
        throw std::invalid_argument("StabilizerState supports 1..4096 qubits");
    }
    const std::size_t cells = static_cast<std::size_t>(2 * n_) * n_;
    x_.assign(cells, 0);
    z_.assign(cells, 0);
    r_.assign(2 * n_, 0);
    for (int i = 0; i < n_; ++i) {
        x_[static_cast<std::size_t>(i) * n_ + i] = 1;           // destab X_i
        z_[static_cast<std::size_t>(n_ + i) * n_ + i] = 1;      // stab Z_i
    }
}

bool
StabilizerState::is_clifford(const Gate& gate)
{
    switch (gate.kind()) {
      case GateKind::kI:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kSWAP:
        return true;
      default:
        return false;
    }
}

void
StabilizerState::apply_gate(const Gate& gate)
{
    const auto& q = gate.qubits();
    for (int qi : q) {
        if (qi >= n_) {
            throw std::out_of_range("stabilizer: qubit out of range");
        }
    }
    switch (gate.kind()) {
      case GateKind::kI:   return;
      case GateKind::kX:   x(q[0]); return;
      case GateKind::kY:   y(q[0]); return;
      case GateKind::kZ:   z(q[0]); return;
      case GateKind::kH:   h(q[0]); return;
      case GateKind::kS:   s(q[0]); return;
      case GateKind::kSdg: sdg(q[0]); return;
      case GateKind::kCX:  cx(q[0], q[1]); return;
      case GateKind::kCZ:  cz(q[0], q[1]); return;
      case GateKind::kSWAP: swap_qubits(q[0], q[1]); return;
      default:
        throw std::invalid_argument("stabilizer: non-Clifford gate " +
                                    gate.name());
    }
}

void
StabilizerState::h(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const std::size_t idx = static_cast<std::size_t>(row) * n_ + q;
        r_[row] ^= x_[idx] & z_[idx];
        const std::uint8_t tmp = x_[idx];
        x_[idx] = z_[idx];
        z_[idx] = tmp;
    }
}

void
StabilizerState::s(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const std::size_t idx = static_cast<std::size_t>(row) * n_ + q;
        r_[row] ^= x_[idx] & z_[idx];
        z_[idx] ^= x_[idx];
    }
}

void
StabilizerState::sdg(int q)
{
    // Sdg = Z . S (diagonal gates commute).
    z(q);
    s(q);
}

void
StabilizerState::x(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        r_[row] ^= z_[static_cast<std::size_t>(row) * n_ + q];
    }
}

void
StabilizerState::y(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const std::size_t idx = static_cast<std::size_t>(row) * n_ + q;
        r_[row] ^= x_[idx] ^ z_[idx];
    }
}

void
StabilizerState::z(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        r_[row] ^= x_[static_cast<std::size_t>(row) * n_ + q];
    }
}

void
StabilizerState::cx(int control, int target)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const std::size_t base = static_cast<std::size_t>(row) * n_;
        const std::uint8_t xc = x_[base + control];
        const std::uint8_t zc = z_[base + control];
        const std::uint8_t xt = x_[base + target];
        const std::uint8_t zt = z_[base + target];
        r_[row] ^= (xc & zt) & (xt ^ zc ^ 1);
        x_[base + target] = xt ^ xc;
        z_[base + control] = zc ^ zt;
    }
}

void
StabilizerState::cz(int a, int b)
{
    h(b);
    cx(a, b);
    h(b);
}

void
StabilizerState::swap_qubits(int a, int b)
{
    cx(a, b);
    cx(b, a);
    cx(a, b);
}

int
StabilizerState::phase_exponent(int h_row, int i_row) const
{
    // Sum of g() contributions plus both phase bits, mod 4
    // (Aaronson–Gottesman rowsum).
    int sum = 2 * r_[h_row] + 2 * r_[i_row];
    const std::size_t hb = static_cast<std::size_t>(h_row) * n_;
    const std::size_t ib = static_cast<std::size_t>(i_row) * n_;
    for (int j = 0; j < n_; ++j) {
        const int x1 = x_[ib + j], z1 = z_[ib + j];
        const int x2 = x_[hb + j], z2 = z_[hb + j];
        if (x1 == 0 && z1 == 0) {
            continue;
        } else if (x1 == 1 && z1 == 1) {
            sum += z2 - x2;
        } else if (x1 == 1) {
            sum += z2 * (2 * x2 - 1);
        } else {
            sum += x2 * (1 - 2 * z2);
        }
    }
    sum %= 4;
    if (sum < 0) {
        sum += 4;
    }
    return sum;
}

void
StabilizerState::rowsum(int h_row, int i_row)
{
    const int exponent = phase_exponent(h_row, i_row);
    // Stabilizer rows always compose to a real sign (+1 or -1); destabilizer
    // rows may pick up a factor of i, but their phase bits are never read
    // (Aaronson-Gottesman), so any consistent choice works there.
    if (h_row >= n_) {
        TQSIM_ASSERT_MSG(exponent == 0 || exponent == 2,
                         "stabilizer rowsum produced an imaginary phase");
    }
    r_[h_row] = static_cast<std::uint8_t>((exponent >> 1) & 1);
    const std::size_t hb = static_cast<std::size_t>(h_row) * n_;
    const std::size_t ib = static_cast<std::size_t>(i_row) * n_;
    for (int j = 0; j < n_; ++j) {
        x_[hb + j] ^= x_[ib + j];
        z_[hb + j] ^= z_[ib + j];
    }
}

bool
StabilizerState::is_deterministic(int q) const
{
    for (int i = n_; i < 2 * n_; ++i) {
        if (x_[static_cast<std::size_t>(i) * n_ + q]) {
            return false;
        }
    }
    return true;
}

int
StabilizerState::measure(int q, util::Rng& rng)
{
    if (q < 0 || q >= n_) {
        throw std::out_of_range("measure: qubit out of range");
    }
    int p = -1;
    for (int i = n_; i < 2 * n_; ++i) {
        if (x_[static_cast<std::size_t>(i) * n_ + q]) {
            p = i;
            break;
        }
    }
    if (p >= 0) {
        // Random outcome: update all other rows that anticommute with Z_q.
        for (int i = 0; i < 2 * n_; ++i) {
            if (i != p && x_[static_cast<std::size_t>(i) * n_ + q]) {
                rowsum(i, p);
            }
        }
        // Destabilizer slot gets the old stabilizer row.
        const std::size_t dst = static_cast<std::size_t>(p - n_) * n_;
        const std::size_t src = static_cast<std::size_t>(p) * n_;
        for (int j = 0; j < n_; ++j) {
            x_[dst + j] = x_[src + j];
            z_[dst + j] = z_[src + j];
        }
        r_[p - n_] = r_[p];
        // Row p becomes +-Z_q with a random sign = the outcome.
        for (int j = 0; j < n_; ++j) {
            x_[src + j] = 0;
            z_[src + j] = 0;
        }
        z_[src + q] = 1;
        const int outcome = static_cast<int>(rng.uniform_u64(2));
        r_[p] = static_cast<std::uint8_t>(outcome);
        return outcome;
    }
    // Deterministic outcome: accumulate the matching destabilizer products
    // into a scratch row (stored temporarily beyond the tableau).
    std::vector<std::uint8_t> sx(n_, 0), sz(n_, 0);
    std::uint8_t sr = 0;
    // Scratch rowsum with the same phase arithmetic as rowsum().
    auto scratch_rowsum = [&](int i_row) {
        int sum = 2 * sr + 2 * r_[i_row];
        const std::size_t ib = static_cast<std::size_t>(i_row) * n_;
        for (int j = 0; j < n_; ++j) {
            const int x1 = x_[ib + j], z1 = z_[ib + j];
            const int x2 = sx[j], z2 = sz[j];
            if (x1 == 0 && z1 == 0) {
                continue;
            } else if (x1 == 1 && z1 == 1) {
                sum += z2 - x2;
            } else if (x1 == 1) {
                sum += z2 * (2 * x2 - 1);
            } else {
                sum += x2 * (1 - 2 * z2);
            }
        }
        sum %= 4;
        if (sum < 0) {
            sum += 4;
        }
        TQSIM_ASSERT_MSG(sum == 0 || sum == 2, "scratch rowsum imaginary");
        sr = static_cast<std::uint8_t>(sum == 2);
        for (int j = 0; j < n_; ++j) {
            sx[j] ^= x_[ib + j];
            sz[j] ^= z_[ib + j];
        }
    };
    for (int i = 0; i < n_; ++i) {
        if (x_[static_cast<std::size_t>(i) * n_ + q]) {
            scratch_rowsum(i + n_);
        }
    }
    return sr;
}

std::uint64_t
StabilizerState::measure_all(util::Rng& rng)
{
    std::uint64_t outcome = 0;
    for (int q = 0; q < n_ && q < 64; ++q) {
        if (measure(q, rng)) {
            outcome |= std::uint64_t{1} << q;
        }
    }
    return outcome;
}

// ---- Noisy Clifford trajectories ---------------------------------------------

namespace {

/** Returns the Pauli (I/X/Y/Z per qubit) form of a Kraus op, or empty. */
bool
is_pauli_channel(const noise::Channel& channel)
{
    if (!channel.is_unitary_mixture()) {
        return false;
    }
    // All our unitary-mixture factories build Pauli mixtures; verify by
    // checking each op is (scaled) I/X/Y/Z (or tensor products thereof)
    // structurally: every row and column has exactly one nonzero entry of
    // equal magnitude, and entries are real or purely imaginary.
    const std::size_t d = channel.kraus().dim();
    for (const sim::Matrix& k : channel.kraus().ops()) {
        for (std::size_t row = 0; row < d; ++row) {
            int nonzero = 0;
            for (std::size_t col = 0; col < d; ++col) {
                const sim::Complex v = k[row * d + col];
                if (std::abs(v) > 1e-12) {
                    ++nonzero;
                    if (std::abs(v.real()) > 1e-12 &&
                        std::abs(v.imag()) > 1e-12) {
                        return false;  // not a Pauli entry
                    }
                }
            }
            if (nonzero > 1) {
                return false;
            }
        }
    }
    return true;
}

/** Applies a (scaled-Pauli) Kraus unitary to the tableau. */
void
apply_pauli_op(StabilizerState& state, const sim::Matrix& k,
               const std::vector<int>& qubits)
{
    const std::size_t d = std::size_t{1} << qubits.size();
    // Identify the per-qubit Pauli from the permutation/phase pattern.
    // For each qubit b: X component = does column 0 map to a row with bit b
    // flipped; Z component = sign structure.  Simplest robust approach:
    // compare against the 4 Pauli matrices per qubit via kron structure.
    // For 1q ops do it directly; for 2q ops factor by checking all 16
    // combinations.
    const sim::Matrix paulis[4] = {
        {1, 0, 0, 1},
        {0, 1, 1, 0},
        {0, sim::Complex(0, -1), sim::Complex(0, 1), 0},
        {1, 0, 0, -1}};
    auto matches = [&](const sim::Matrix& m, const std::vector<int>& combo) {
        // Build kron of the combo (qubits[0] = low bits) and compare up to
        // global phase.
        sim::Matrix full = paulis[combo[0]];
        std::size_t dim = 2;
        for (std::size_t i = 1; i < combo.size(); ++i) {
            full = noise::kron(paulis[combo[i]], 2, full, dim);
            dim *= 2;
        }
        // Find scale from the first nonzero of m.
        sim::Complex scale{0, 0};
        for (std::size_t idx = 0; idx < m.size(); ++idx) {
            if (std::abs(full[idx]) > 1e-12) {
                scale = m[idx] / full[idx];
                break;
            }
        }
        if (std::abs(scale) < 1e-12) {
            return false;
        }
        for (std::size_t idx = 0; idx < m.size(); ++idx) {
            if (std::abs(m[idx] - scale * full[idx]) > 1e-9) {
                return false;
            }
        }
        return true;
    };
    std::vector<int> combo(qubits.size(), 0);
    const int total = static_cast<int>(d * d);  // 4^arity combos
    for (int c = 0; c < total; ++c) {
        int rem = c;
        for (std::size_t i = 0; i < combo.size(); ++i) {
            combo[i] = rem & 3;
            rem >>= 2;
        }
        if (matches(k, combo)) {
            for (std::size_t i = 0; i < combo.size(); ++i) {
                switch (combo[i]) {
                  case 1: state.x(qubits[i]); break;
                  case 2: state.y(qubits[i]); break;
                  case 3: state.z(qubits[i]); break;
                  default: break;
                }
            }
            return;
        }
    }
    throw std::invalid_argument("stabilizer: Kraus op is not a Pauli");
}

void
apply_channel_stab(StabilizerState& state, const noise::Channel& channel,
                   const std::vector<int>& qubits, util::Rng& rng)
{
    const auto& probs = channel.mixture_probabilities();
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t pick = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        if (u < acc) {
            pick = i;
            break;
        }
    }
    if (pick == 0) {
        return;  // identity-like branch
    }
    apply_pauli_op(state, channel.kraus().op(pick), qubits);
}

}  // namespace

bool
stabilizer_compatible(const sim::Circuit& circuit,
                      const noise::NoiseModel& model)
{
    for (const Gate& g : circuit.gates()) {
        if (!StabilizerState::is_clifford(g)) {
            return false;
        }
    }
    for (const noise::Channel& c : model.on_1q_gates()) {
        if (!is_pauli_channel(c)) {
            return false;
        }
    }
    for (const noise::Channel& c : model.on_2q_gates()) {
        if (!is_pauli_channel(c)) {
            return false;
        }
    }
    return true;
}

metrics::Distribution
run_stabilizer_trajectories(const sim::Circuit& circuit,
                            const noise::NoiseModel& model,
                            std::uint64_t shots, std::uint64_t seed)
{
    if (!stabilizer_compatible(circuit, model)) {
        throw std::invalid_argument(
            "run_stabilizer_trajectories: circuit/model not Clifford+Pauli");
    }
    if (circuit.num_qubits() > 30) {
        throw std::invalid_argument(
            "run_stabilizer_trajectories: distribution output capped at "
            "30 qubits");
    }
    metrics::Distribution dist(circuit.num_qubits());
    util::Rng master(seed);
    for (std::uint64_t shot = 0; shot < shots; ++shot) {
        util::Rng rng = master.split(0, shot);
        StabilizerState state(circuit.num_qubits());
        for (const Gate& g : circuit.gates()) {
            state.apply_gate(g);
            const auto& qubits = g.qubits();
            if (g.arity() == 1) {
                for (const noise::Channel& c : model.on_1q_gates()) {
                    apply_channel_stab(state, c, {qubits[0]}, rng);
                }
            } else {
                for (const noise::Channel& c : model.on_2q_gates()) {
                    if (c.arity() == 2) {
                        apply_channel_stab(state, c, {qubits[0], qubits[1]},
                                           rng);
                    } else {
                        for (int q : qubits) {
                            apply_channel_stab(state, c, {q}, rng);
                        }
                    }
                }
            }
        }
        std::uint64_t outcome = state.measure_all(rng);
        outcome = noise::apply_readout_error(
            outcome, circuit.num_qubits(), model.readout_flip_probability(),
            rng);
        dist.add_outcome(outcome);
    }
    if (shots > 0) {
        dist.normalize();
    }
    return dist;
}

}  // namespace tqsim::stab
