#ifndef TQSIM_STAB_STABILIZER_H_
#define TQSIM_STAB_STABILIZER_H_

/**
 * @file
 * Aaronson–Gottesman (CHP) stabilizer simulation.
 *
 * The paper's Sec. 4.2 notes that BV "relies on Clifford gates and can be
 * efficiently simulated under Pauli noise using stabilizer simulations" —
 * this module is that special-purpose substrate.  It tracks an n-qubit
 * stabilizer tableau in O(n^2) bits and supports Clifford gates (X, Y, Z,
 * H, S, Sdg, CX, CZ, SWAP) plus computational-basis measurement, so noisy
 * Clifford circuits under stochastic Pauli channels run in polynomial time
 * instead of O(2^n).
 */

#include <cstdint>
#include <vector>

#include "metrics/distribution.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"
#include "sim/gate.h"
#include "util/rng.h"

namespace tqsim::stab {

/** CHP tableau: 2n rows (n destabilizers then n stabilizers). */
class StabilizerState
{
  public:
    /** Initializes to |0...0>. */
    explicit StabilizerState(int num_qubits);

    /** Returns the qubit count. */
    int num_qubits() const { return n_; }

    /** True if @p gate can be applied to a stabilizer state. */
    static bool is_clifford(const sim::Gate& gate);

    /** Applies a Clifford gate; throws std::invalid_argument otherwise. */
    void apply_gate(const sim::Gate& gate);

    /**
     * Measures qubit @p q in the computational basis, collapsing the state.
     * @return 0 or 1.
     */
    int measure(int q, util::Rng& rng);

    /** Measures all qubits (ascending); returns the packed bitstring. */
    std::uint64_t measure_all(util::Rng& rng);

    /** True if measuring @p q has a deterministic outcome (no collapse). */
    bool is_deterministic(int q) const;

    /** @name Primitive Clifford updates
     *  @{ */
    void h(int q);
    void s(int q);
    void sdg(int q);
    void x(int q);
    void y(int q);
    void z(int q);
    void cx(int control, int target);
    void cz(int a, int b);
    void swap_qubits(int a, int b);
    /** @} */

  private:
    int row_bit(const std::vector<std::uint8_t>& bits, int row, int col) const;
    void rowsum(int h, int i);
    int phase_exponent(int h, int i) const;

    int n_;
    // bits are stored row-major: row in [0, 2n), column in [0, n).
    std::vector<std::uint8_t> x_;
    std::vector<std::uint8_t> z_;
    std::vector<std::uint8_t> r_;  // one phase bit per row
};

/**
 * Returns true when @p circuit contains only Clifford gates and @p model
 * attaches only Pauli (unitary-mixture-of-Pauli) channels — the regime
 * where stabilizer trajectories apply.
 */
bool stabilizer_compatible(const sim::Circuit& circuit,
                           const noise::NoiseModel& model);

/**
 * Runs @p shots stabilizer noise trajectories of a Clifford @p circuit
 * under a Pauli @p model (readout error included) and returns the sampled
 * outcome distribution.  Throws if incompatible.
 */
metrics::Distribution run_stabilizer_trajectories(
    const sim::Circuit& circuit, const noise::NoiseModel& model,
    std::uint64_t shots, std::uint64_t seed);

}  // namespace tqsim::stab

#endif  // TQSIM_STAB_STABILIZER_H_
