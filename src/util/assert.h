#ifndef TQSIM_UTIL_ASSERT_H_
#define TQSIM_UTIL_ASSERT_H_

/**
 * @file
 * Internal-invariant assertion macros.
 *
 * TQSIM_ASSERT guards conditions that can only fail due to a bug inside the
 * library (the gem5 "panic" category).  User-facing argument validation is
 * done with exceptions (std::invalid_argument / std::out_of_range) instead.
 */

#include <cstdio>
#include <cstdlib>

namespace tqsim::util {

/** Prints a failed-invariant message and aborts.  Never returns. */
[[noreturn]] inline void
assert_fail(const char* expr, const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "TQSIM invariant violated: %s\n  at %s:%d\n  %s\n",
                 expr, file, line, msg ? msg : "");
    std::abort();
}

}  // namespace tqsim::util

/** Asserts an internal invariant; active in all build types. */
#define TQSIM_ASSERT(cond)                                                    \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::tqsim::util::assert_fail(#cond, __FILE__, __LINE__, nullptr);   \
        }                                                                     \
    } while (0)

/** Asserts an internal invariant with an explanatory message. */
#define TQSIM_ASSERT_MSG(cond, msg)                                           \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::tqsim::util::assert_fail(#cond, __FILE__, __LINE__, (msg));     \
        }                                                                     \
    } while (0)

#endif  // TQSIM_UTIL_ASSERT_H_
