#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace tqsim::util {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
splitmix64_next(std::uint64_t& state) noexcept
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept
{
    std::uint64_t s = a;
    std::uint64_t out = splitmix64_next(s);
    s ^= b + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
    out ^= splitmix64_next(s);
    s ^= c + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
    out ^= splitmix64_next(s);
    return out;
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64_next(sm);
    }
    // xoshiro's all-zero state is invalid; splitmix64 cannot produce four
    // zero outputs in a row, but guard the invariant anyway.
    TQSIM_ASSERT(state_[0] || state_[1] || state_[2] || state_[3]);
}

std::uint64_t
Rng::next_u64() noexcept
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform() noexcept
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniform_u64(std::uint64_t bound) noexcept
{
    TQSIM_ASSERT_MSG(bound > 0, "uniform_u64 bound must be positive");
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = (~bound + 1) % bound;
        while (low < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::normal() noexcept
{
    // Box–Muller; draws two uniforms per call and discards the pair state to
    // keep split() semantics simple (no hidden carry-over between calls).
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

Rng
Rng::split(std::uint64_t level, std::uint64_t index) const noexcept
{
    return Rng(mix_seed(seed_, 0xA5A5A5A500000000ULL | level, index));
}

}  // namespace tqsim::util
