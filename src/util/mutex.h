#ifndef TQSIM_UTIL_MUTEX_H_
#define TQSIM_UTIL_MUTEX_H_

/**
 * @file
 * Annotated mutex wrappers for Clang Thread Safety Analysis
 * (docs/static-analysis.md#thread-safety-analysis).
 *
 * std::mutex and std::lock_guard carry no capability attributes in
 * libstdc++, so code using them directly is invisible to -Wthread-safety.
 * Mutex wraps std::mutex as a TQSIM_CAPABILITY; MutexLock replaces both
 * std::lock_guard and std::unique_lock as the tree's one RAII guard, with
 * explicit lock()/unlock() for guarded regions that open a window (the
 * lane loop) and native() exposing the underlying std::unique_lock for
 * condition-variable waits.
 *
 * Zero-cost: both types compile to exactly the std:: operations they wrap;
 * the annotations are compile-time only and expand to nothing off clang.
 */

#include <mutex>

#include "util/thread_annotations.h"

namespace tqsim::util {

/** An annotated std::mutex.  Lock through MutexLock; native() exists for
 *  std::condition_variable interop only. */
class TQSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() TQSIM_ACQUIRE() { m_.lock(); }
    void unlock() TQSIM_RELEASE() { m_.unlock(); }
    bool try_lock() TQSIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** The wrapped std::mutex, for condition-variable construction paths
     *  only — locking it directly bypasses the analysis. */
    std::mutex& native() { return m_; }

  private:
    std::mutex m_;
};

/** RAII guard over a Mutex: locks on construction, unlocks on
 *  destruction.  Relockable (scoped-capability semantics): unlock() opens
 *  a window and lock() closes it, with the analysis tracking the state
 *  across both.  native() hands the underlying std::unique_lock to
 *  std::condition_variable::wait* — always with the predicate overload
 *  (tqsim-lint rule cv-wait-predicate). */
class TQSIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& m) TQSIM_ACQUIRE(m) : lock_(m.native()) {}

    ~MutexLock() TQSIM_RELEASE() = default;

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** Reacquires after an unlock() window. */
    void lock() TQSIM_ACQUIRE() { lock_.lock(); }
    /** Opens an unlocked window (e.g. to run a job without the service
     *  lock); pair with lock() or let the destructor see it unlocked. */
    void unlock() TQSIM_RELEASE() { lock_.unlock(); }

    /** The underlying std::unique_lock, for condition-variable waits only.
     *  The analysis treats the capability as continuously held across a
     *  wait — correct at every point the caller can observe. */
    std::unique_lock<std::mutex>& native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_MUTEX_H_
