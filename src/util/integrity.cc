#include "util/integrity.h"

namespace tqsim::util::integrity {

void
StreamDigest::absorb(const double* values, std::size_t count) noexcept
{
    std::size_t i = 0;
    // Finish the lane rotation a previous chunk left mid-cycle so the main
    // loop always starts on lane 0 (chunk boundaries then cannot shift
    // which lane a given stream position lands in).
    while ((words_ & 3U) != 0 && i < count) {
        absorb_word(std::bit_cast<std::uint64_t>(values[i]));
        ++i;
    }
    // Four independent accumulators: no cross-iteration dependency between
    // lanes, so the compiler keeps them in registers / SIMD lanes.
    std::uint64_t l0 = lanes_[0];
    std::uint64_t l1 = lanes_[1];
    std::uint64_t l2 = lanes_[2];
    std::uint64_t l3 = lanes_[3];
    const std::size_t vec_start = i;
    for (; i + 4 <= count; i += 4) {
        l0 = (l0 ^ std::bit_cast<std::uint64_t>(values[i + 0])) * kFnvPrime;
        l1 = (l1 ^ std::bit_cast<std::uint64_t>(values[i + 1])) * kFnvPrime;
        l2 = (l2 ^ std::bit_cast<std::uint64_t>(values[i + 2])) * kFnvPrime;
        l3 = (l3 ^ std::bit_cast<std::uint64_t>(values[i + 3])) * kFnvPrime;
    }
    lanes_[0] = l0;
    lanes_[1] = l1;
    lanes_[2] = l2;
    lanes_[3] = l3;
    words_ += i - vec_start;
    for (; i < count; ++i) {
        absorb_word(std::bit_cast<std::uint64_t>(values[i]));
    }
}

std::uint64_t
digest_doubles(const double* values, std::size_t count) noexcept
{
    StreamDigest d;
    d.absorb(values, count);
    return d.value();
}

}  // namespace tqsim::util::integrity
