#ifndef TQSIM_UTIL_RNG_H_
#define TQSIM_UTIL_RNG_H_

/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * TQSim's simulation tree requires that every node draws noise from an
 * independent stream whose seed is a pure function of (master seed, level,
 * child index).  This makes runs bit-reproducible regardless of traversal
 * order and lets the baseline and tree executors be compared shot-for-shot.
 *
 * The generator is xoshiro256++ (public-domain algorithm by Blackman and
 * Vigna), seeded through splitmix64 as its authors recommend.
 */

#include <array>
#include <cstdint>

namespace tqsim::util {

/** Advances a splitmix64 state and returns the next 64-bit output. */
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/** Mixes multiple 64-bit words into a single well-distributed seed. */
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c = 0) noexcept;

/**
 * xoshiro256++ pseudo-random generator.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used with
 * <random> distributions, but the simulator's hot paths use the uniform() /
 * uniform_u64() members directly.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Constructs a generator from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    /** Returns the next raw 64-bit output. */
    std::uint64_t next_u64() noexcept;

    /** UniformRandomBitGenerator interface. */
    result_type operator()() noexcept { return next_u64(); }
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept
    {
        return ~std::uint64_t{0};
    }

    /** Returns a double uniformly distributed in [0, 1). */
    double uniform() noexcept;

    /** Returns an integer uniformly distributed in [0, bound). @p bound > 0. */
    std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

    /** Returns a standard-normal sample (Box–Muller; stateless pairing). */
    double normal() noexcept;

    /**
     * Derives an independent child generator.  The child stream depends only
     * on this generator's seed and the (level, index) coordinates, not on how
     * many numbers the parent has consumed.
     */
    Rng split(std::uint64_t level, std::uint64_t index) const noexcept;

    /** Returns the seed this generator was constructed with. */
    std::uint64_t seed() const noexcept { return seed_; }

  private:
    std::uint64_t seed_;
    std::array<std::uint64_t, 4> state_;
};

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_RNG_H_
