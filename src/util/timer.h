#ifndef TQSIM_UTIL_TIMER_H_
#define TQSIM_UTIL_TIMER_H_

/**
 * @file
 * Wall-clock timing helpers used by the executor statistics and the copy-cost
 * profiler (Sec. 3.6 of the paper).
 */

#include <chrono>
#include <cstdint>

namespace tqsim::util {

/** Monotonic wall-clock stopwatch with nanosecond resolution. */
class Timer
{
  public:
    /** Constructs a timer already running. */
    Timer() : start_(Clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Returns nanoseconds elapsed since construction or last reset(). */
    std::int64_t
    elapsed_ns() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

    /** Returns seconds elapsed since construction or last reset(). */
    double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

    /** Returns milliseconds elapsed since construction or last reset(). */
    double elapsed_ms() const { return static_cast<double>(elapsed_ns()) * 1e-6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulating timer: sums durations across many start/stop intervals.
 * Used to attribute executor time to gate application vs state copies.
 */
class AccumulatingTimer
{
  public:
    /** Starts (or restarts) the current interval. */
    void start() { interval_.reset(); running_ = true; }

    /** Stops the current interval and adds it to the running total. */
    void
    stop()
    {
        if (running_) {
            total_ns_ += interval_.elapsed_ns();
            running_ = false;
        }
    }

    /** Returns the accumulated nanoseconds over all stopped intervals. */
    std::int64_t total_ns() const { return total_ns_; }

    /** Folds another timer's stopped total into this one (parallel merges). */
    void merge(const AccumulatingTimer& other) { total_ns_ += other.total_ns(); }

    /** Returns the accumulated seconds over all stopped intervals. */
    double total_s() const { return static_cast<double>(total_ns_) * 1e-9; }

    /** Clears the accumulated total. */
    void reset() { total_ns_ = 0; running_ = false; }

  private:
    Timer interval_;
    std::int64_t total_ns_ = 0;
    bool running_ = false;
};

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_TIMER_H_
