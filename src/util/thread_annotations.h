#ifndef TQSIM_UTIL_THREAD_ANNOTATIONS_H_
#define TQSIM_UTIL_THREAD_ANNOTATIONS_H_

/**
 * @file
 * Clang Thread Safety Analysis attribute macros
 * (docs/static-analysis.md#thread-safety-analysis).
 *
 * These wrap Clang's capability-based static lock checker
 * (-Wthread-safety): types annotated TQSIM_CAPABILITY are lockable
 * resources, data annotated TQSIM_GUARDED_BY(mu) may only be touched while
 * mu is held, and functions annotated TQSIM_REQUIRES(mu) may only be called
 * with mu held.  The analysis runs at compile time on the clang CI legs and
 * proves the locking protocol of the service layer and worker pool — no
 * test has to hit the bad interleaving.
 *
 * On non-clang compilers (and on clang builds without the attributes) every
 * macro expands to nothing, so gcc builds are unaffected.
 *
 * Usage contract in this tree:
 *  - Use util::Mutex / util::MutexLock (util/mutex.h), never a raw
 *    std::mutex: libstdc++'s types carry no annotations, so the analysis
 *    would be blind to them.
 *  - Helpers that assume the caller holds a lock are named *_locked() and
 *    annotated TQSIM_REQUIRES(mu) — the compiler then rejects any call
 *    path that reaches them without the lock.
 *  - TQSIM_NO_THREAD_SAFETY_ANALYSIS is reserved for the few functions the
 *    analysis cannot model (condition-variable predicates, which clang
 *    analyzes context-free even though they always run with the lock
 *    held); every use must carry a comment stating the manual proof.
 */

#if defined(__clang__) && !defined(SWIG)
#define TQSIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TQSIM_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define TQSIM_CAPABILITY(x) TQSIM_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define TQSIM_SCOPED_CAPABILITY TQSIM_THREAD_ANNOTATION__(scoped_lockable)

/** Data that may only be read or written while holding @p x. */
#define TQSIM_GUARDED_BY(x) TQSIM_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer whose pointee may only be touched while holding @p x. */
#define TQSIM_PT_GUARDED_BY(x) TQSIM_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define TQSIM_REQUIRES(...) \
    TQSIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function that must be called with the listed capabilities NOT held. */
#define TQSIM_EXCLUDES(...) \
    TQSIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Function that acquires the listed capabilities (held on return). */
#define TQSIM_ACQUIRE(...) \
    TQSIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define TQSIM_RELEASE(...) \
    TQSIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p ret. */
#define TQSIM_TRY_ACQUIRE(...) \
    TQSIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Declares this lock's rank below the listed locks (lock hierarchy;
 *  checked under -Wthread-safety-beta, documented either way). */
#define TQSIM_ACQUIRED_BEFORE(...) \
    TQSIM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/** Declares this lock's rank above the listed locks. */
#define TQSIM_ACQUIRED_AFTER(...) \
    TQSIM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/** Returns a reference to the named capability. */
#define TQSIM_RETURN_CAPABILITY(x) \
    TQSIM_THREAD_ANNOTATION__(lock_returned(x))

/** Opts a function out of the analysis.  Requires a comment with the
 *  manual proof; see the file header. */
#define TQSIM_NO_THREAD_SAFETY_ANALYSIS \
    TQSIM_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // TQSIM_UTIL_THREAD_ANNOTATIONS_H_
