#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tqsim::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty()) {
        throw std::invalid_argument("Table requires at least one column");
    }
}

void
Table::add_row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table row has wrong number of cells");
    }
    rows_.push_back(std::move(cells));
}

void
Table::add_rule()
{
    rows_.emplace_back();
}

std::size_t
Table::row_count() const
{
    std::size_t n = 0;
    for (const auto& row : rows_) {
        if (!row.empty()) {
            ++n;
        }
    }
    return n;
}

std::string
Table::to_string() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_rule = [&](std::ostringstream& os) {
        os << '+';
        for (std::size_t w : widths) {
            os << std::string(w + 2, '-') << '+';
        }
        os << '\n';
    };
    auto render_cells = [&](std::ostringstream& os,
                            const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
        }
        os << '\n';
    };

    std::ostringstream os;
    render_rule(os);
    render_cells(os, headers_);
    render_rule(os);
    for (const auto& row : rows_) {
        if (row.empty()) {
            render_rule(os);
        } else {
            render_cells(os, row);
        }
    }
    render_rule(os);
    return os.str();
}

std::ostream&
operator<<(std::ostream& os, const Table& table)
{
    return os << table.to_string();
}

std::string
fmt_double(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmt_sci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
    return buf;
}

std::string
fmt_bytes(std::uint64_t bytes)
{
    const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    int idx = 0;
    while (value >= 1024.0 && idx < 4) {
        value /= 1024.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0) {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
    }
    return buf;
}

std::string
fmt_seconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    }
    return buf;
}

std::string
fmt_speedup(double factor)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", factor);
    return buf;
}

}  // namespace tqsim::util
