#ifndef TQSIM_UTIL_FAILPOINT_H_
#define TQSIM_UTIL_FAILPOINT_H_

/**
 * @file
 * Deterministic fail points: named injection sites compiled into the risky
 * seams of the engine (state/snapshot allocation, arena leases, transport
 * slice exchange, reuse-cache insert/lease, service lane startup) that can
 * be armed with a *seeded schedule* to provoke failures on demand
 * (docs/robustness.md#fail-point-catalog).
 *
 * Design contract:
 *
 *  - Disarmed (the default, and the only production configuration) a fail
 *    point is one inlined relaxed atomic load and an untaken branch — no
 *    locks, no allocation, no measurable overhead on the hot paths
 *    (bench_micro_kernels gates this in CI).
 *  - Armed, whether evaluation @em n of site @em s fires is a pure function
 *    of (plan seed, s, n) via util::Rng — never of wall clock, thread
 *    interleaving, or address-space layout — so a chaos run's fault
 *    schedule is replayable from its seed alone.
 *  - Sites fire by throwing: InjectedBadAlloc (derives std::bad_alloc) at
 *    allocation seams, InjectedFault (derives TransientError) elsewhere.
 *    Recovery code therefore exercises the exact unwind paths a real OOM
 *    or transport failure would take.
 *  - The registry lock is a leaf in the declared lock hierarchy: fail
 *    points fire from inside service/cache critical sections, so the
 *    armed slow path acquires nothing beyond its own mutex (annotated for
 *    Clang Thread Safety Analysis in failpoint.cc; see
 *    docs/static-analysis.md#lock-order).
 *
 * Arming is programmatic (failpoint::arm, used by tests/benches) or via the
 * TQSIM_FAILPOINTS environment variable parsed once at process start:
 *
 *   TQSIM_FAILPOINTS="sites=sim.arena.snapshot,service.lane.start;p=0.01;
 *                     every=0;seed=42"
 *
 * `sites=*` arms every site; `every=N` (N > 0) additionally fires each
 * armed site deterministically on every Nth evaluation, which gives tests
 * guaranteed (not merely probable) coverage of each failure path.
 *
 * Corruption mode (`mode=corrupt`, or FailPlan::corrupt) models *silent*
 * data corruption instead of crashes: a firing TQSIM_FAILPOINT_CORRUPT site
 * flips one deterministically chosen bit in a caller-supplied buffer —
 * after the data movement it shadows, where a DMA error or bit rot would
 * land — and throws nothing.  The two mode families are mutually exclusive
 * per plan: in corruption mode the throw-style sites are inert (and do not
 * consume evaluation indices), and vice versa, so an `every=N` schedule in
 * either mode is exact.  Corruption sites exist so the integrity layer
 * (util/integrity.h, docs/robustness.md#integrity--silent-corruption) can
 * prove its detectors catch what the injectors break.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tqsim::util {

/**
 * Base class for failures that are expected to succeed on retry: injected
 * faults, transport hiccups, lane deaths.  The service layer maps anything
 * deriving from TransientError (and std::bad_alloc) to a retryable
 * JobError; everything else is permanent.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Thrown by a firing non-allocation fail point (transport, cache, lane). */
class InjectedFault : public TransientError
{
  public:
    explicit InjectedFault(const std::string& site)
        : TransientError("injected fault at " + site)
    {
    }
};

/**
 * Thrown by a firing allocation-seam fail point.  Derives std::bad_alloc so
 * the engine's OOM-recovery paths (snapshot degradation, ResourceExhausted
 * surfacing) are exercised by the same catch clauses that handle a real
 * allocator failure.
 */
class InjectedBadAlloc : public std::bad_alloc
{
  public:
    const char* what() const noexcept override
    {
        return "injected allocation failure (fail point)";
    }
};

namespace failpoint {

/** A seeded fault schedule over a set of named sites. */
struct FailPlan
{
    /** Schedule seed: the fire pattern is a pure function of
     *  (seed, site, evaluation index). */
    std::uint64_t seed = 1;
    /** Per-evaluation fire probability in [0, 1]. */
    double probability = 0.0;
    /** If > 0, every Nth evaluation of an armed site fires regardless of
     *  probability — deterministic coverage for tests. */
    std::uint64_t every = 0;
    /** Armed site names; the single entry "*" arms every site. */
    std::vector<std::string> sites;
    /** Corruption mode: firing TQSIM_FAILPOINT_CORRUPT sites flip one
     *  deterministic bit in their target buffer instead of throwing, and
     *  throw-style sites are inert (env key `mode=corrupt`). */
    bool corrupt = false;
};

/** Per-site counters (diagnostics and test assertions). */
struct SiteStats
{
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

namespace internal {
/** Whole-subsystem switch.  Relaxed is correct: arming happens before the
 *  run under test starts, and a stale read merely delays the first
 *  injected fault by one evaluation. */
extern std::atomic<bool> g_armed;
}  // namespace internal

/** True when a fail plan is armed.  The disarmed fast path is this single
 *  inlined relaxed load. */
inline bool
armed() noexcept
{
    return internal::g_armed.load(std::memory_order_relaxed);
}

/** Installs @p plan and resets all site counters.  Thread-safe, but meant
 *  to be called while no run is in flight (tests/benches arm between
 *  storms). */
void arm(const FailPlan& plan);

/** Parses TQSIM_FAILPOINTS (see file header) and arms it; returns false
 *  (leaving the subsystem disarmed) when the variable is unset or
 *  malformed.  Called once automatically at static-init time. */
bool arm_from_env();

/** Disarms every site (counters are kept until the next arm()). */
void disarm();

/** Evaluates @p site against the armed schedule: increments its evaluation
 *  counter and returns true when this evaluation fires.  Always false when
 *  disarmed, when @p site is not in the armed set, or when the plan is in
 *  corruption mode (throw-style sites are inert there and consume no
 *  evaluation index). */
bool fires(const char* site);

/** Throws InjectedFault when fires(site). */
void check(const char* site);

/** Throws InjectedBadAlloc when fires(site) — for allocation seams. */
void check_alloc(const char* site);

/**
 * Corruption-mode counterpart of check(): evaluates @p site against the
 * armed schedule and, when this evaluation fires, flips one bit of
 * data[0 .. bytes) — the bit index is a pure function of
 * (plan seed, site, evaluation index) via util::Rng, so a corruption
 * schedule is replayable from its seed exactly like a fault schedule.
 * Returns true when a bit was flipped.  Inert (no evaluation consumed)
 * when disarmed, when the plan is not in corruption mode, or when the
 * buffer is empty.
 */
bool maybe_corrupt(const char* site, void* data, std::size_t bytes);

/** Counters for @p site (zeroes when the site was never evaluated). */
SiteStats site_stats(const char* site);

/** Counters for every site evaluated since the last arm(), sorted by site
 *  name (deterministic order for reports and introspection). */
std::vector<std::pair<std::string, SiteStats>> all_site_stats();

/** The armed plan (default-constructed when never armed).  Introspection
 *  for tests/benches that need to tell throw mode from corruption mode. */
FailPlan current_plan();

/** Total fires across all sites since the last arm(). */
std::uint64_t total_fires();

}  // namespace failpoint
}  // namespace tqsim::util

/**
 * Fail-point check macros: the disarmed cost is the inlined armed() load.
 * TQSIM_FAILPOINT throws util::InjectedFault, TQSIM_FAILPOINT_ALLOC throws
 * util::InjectedBadAlloc (allocation seams).
 */
#define TQSIM_FAILPOINT(site)                            \
    do {                                                 \
        if (::tqsim::util::failpoint::armed()) {         \
            ::tqsim::util::failpoint::check(site);       \
        }                                                \
    } while (false)

#define TQSIM_FAILPOINT_ALLOC(site)                      \
    do {                                                 \
        if (::tqsim::util::failpoint::armed()) {         \
            ::tqsim::util::failpoint::check_alloc(site); \
        }                                                \
    } while (false)

/** Corruption-mode site: flips one deterministic bit of (data, bytes) when
 *  the armed plan is in corruption mode and this evaluation fires.  Placed
 *  *after* the data movement it shadows (unlike the throw sites, which fire
 *  before any mutation). */
#define TQSIM_FAILPOINT_CORRUPT(site, data, bytes)                  \
    do {                                                            \
        if (::tqsim::util::failpoint::armed()) {                    \
            ::tqsim::util::failpoint::maybe_corrupt(site, data,     \
                                                    bytes);         \
        }                                                           \
    } while (false)

#endif  // TQSIM_UTIL_FAILPOINT_H_
