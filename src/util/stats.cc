#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tqsim::util {

void
RunningStats::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::confidence_half_width(double z) const
{
    if (count_ == 0) {
        return 0.0;
    }
    return z * stddev() / std::sqrt(static_cast<double>(count_));
}

double
mean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

double
geometric_mean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0) {
            throw std::invalid_argument(
                "geometric_mean requires strictly positive values");
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1) {
        return values[n / 2];
    }
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

std::size_t
cochran_sample_size(double z, double epsilon, double p_hat,
                    std::size_t population)
{
    if (z <= 0.0) {
        throw std::invalid_argument("cochran: z must be positive");
    }
    if (epsilon <= 0.0 || epsilon >= 1.0) {
        throw std::invalid_argument("cochran: epsilon must be in (0, 1)");
    }
    if (p_hat < 0.0 || p_hat > 1.0) {
        throw std::invalid_argument("cochran: p_hat must be in [0, 1]");
    }
    if (population == 0) {
        return 0;
    }
    // Unbounded-population size: n0 = z^2 p(1-p) / eps^2.
    const double n0 = z * z * p_hat * (1.0 - p_hat) / (epsilon * epsilon);
    // Finite-population correction: n = n0 / (1 + n0 / N).
    const double n = n0 / (1.0 + n0 / static_cast<double>(population));
    const auto rounded = static_cast<std::size_t>(std::ceil(n));
    return std::clamp<std::size_t>(rounded, 1, population);
}

}  // namespace tqsim::util
