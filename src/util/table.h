#ifndef TQSIM_UTIL_TABLE_H_
#define TQSIM_UTIL_TABLE_H_

/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every bench binary prints the rows of the paper table/figure it reproduces
 * in a fixed-width layout so output diffs cleanly across runs.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tqsim::util {

/** Column-aligned ASCII table with a header row and separator rules. */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; it must have exactly as many cells as headers. */
    void add_row(std::vector<std::string> cells);

    /** Appends a horizontal separator rule. */
    void add_rule();

    /** Returns the number of data rows (rules excluded). */
    std::size_t row_count() const;

    /** Renders the table. */
    std::string to_string() const;

    /** Streams the rendered table. */
    friend std::ostream& operator<<(std::ostream& os, const Table& table);

  private:
    std::vector<std::string> headers_;
    // Empty vector encodes a separator rule.
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p digits fractional digits. */
std::string fmt_double(double value, int digits = 3);

/** Formats a double in scientific notation with @p digits digits. */
std::string fmt_sci(double value, int digits = 2);

/** Formats a byte count with an IEC suffix (KiB/MiB/GiB). */
std::string fmt_bytes(std::uint64_t bytes);

/** Formats seconds adaptively (ns/us/ms/s). */
std::string fmt_seconds(double seconds);

/** Formats a multiplicative factor, e.g. "2.51x". */
std::string fmt_speedup(double factor);

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_TABLE_H_
