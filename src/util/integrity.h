#ifndef TQSIM_UTIL_INTEGRITY_H_
#define TQSIM_UTIL_INTEGRITY_H_

/**
 * @file
 * Execution-integrity primitives: a fast streaming digest over amplitude
 * buffers plus tolerance-aware physical invariant checks
 * (docs/robustness.md#integrity--silent-corruption).
 *
 * The digest is FNV-1a over the IEEE-754 bit patterns of the doubles,
 * word-at-a-time across four independent lanes so the inner loop keeps four
 * accumulators in registers and vectorizes; the lane values and the word
 * count fold into one 64-bit value at the end.  It is *streaming*: a digest
 * continued chunk by chunk equals the digest of the concatenation, which is
 * what lets the sharded backend chain per-slice digests in canonical global
 * index order and land on the exact value the dense backend computes —
 * no amplitude traffic, no staging buffer.
 *
 * This layer deliberately knows nothing about simulator types (util sits at
 * the bottom of the include DAG): everything operates on raw double/word
 * buffers and plain scalars.  `sim::StateBackend::state_digest()` adapts it
 * to backend states.
 */

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/failpoint.h"  // TransientError

namespace tqsim::util {

/**
 * Detected state corruption: a digest or physical-invariant check failed.
 * Derives TransientError because the productive response is the same as for
 * an injected fault — quarantine whatever was poisoned and retry the attempt
 * from clean inputs (the service maps this to RejectReason::kIntegrityFailure
 * so the failure is distinguishable in stats and statuses).
 */
class IntegrityError : public TransientError
{
  public:
    explicit IntegrityError(const std::string& what_arg)
        : TransientError("integrity: " + what_arg)
    {
    }
};

namespace integrity {

/** FNV-1a offset basis / prime (the same constants the reuse-cache and
 *  fail-point fingerprints use). */
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/**
 * Streaming 4-lane FNV-1a digest over 64-bit words (amplitude buffers are
 * absorbed as the bit patterns of their doubles).  absorb() may be called
 * any number of times with any chunk sizes; the final value depends only on
 * the concatenated word sequence.  Any single-bit difference anywhere in
 * the stream changes the value (each word multiplies into exactly one lane,
 * and FNV-1a is injective per step for odd primes).
 */
class StreamDigest
{
  public:
    /** Absorbs the IEEE-754 bit patterns of @p count doubles. */
    void absorb(const double* values, std::size_t count) noexcept;

    /** Absorbs a single word (metadata: sizes, indices, flags). */
    void
    absorb_word(std::uint64_t word) noexcept
    {
        std::uint64_t& lane = lanes_[words_ & 3U];
        lane = (lane ^ word) * kFnvPrime;
        ++words_;
    }

    /** Folds the lanes and the total word count into one value.  Does not
     *  consume the state: more absorb() calls may follow. */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t h = kFnvBasis;
        for (const std::uint64_t lane : lanes_) {
            h = (h ^ lane) * kFnvPrime;
        }
        return (h ^ words_) * kFnvPrime;
    }

  private:
    // Distinct lane seeds so a word sequence shifted by one lane position
    // cannot alias (0x9e37... is the 64-bit golden-ratio constant).
    std::uint64_t lanes_[4] = {kFnvBasis,
                               kFnvBasis ^ 0x9e3779b97f4a7c15ULL,
                               kFnvBasis ^ 0x3c6ef372fe94f82aULL,
                               kFnvBasis ^ 0xdaa66d2c7ddf743fULL};
    std::uint64_t words_ = 0;
};

/** One-shot digest of a double buffer (the value a fresh StreamDigest
 *  produces after absorbing exactly this buffer). */
std::uint64_t digest_doubles(const double* values, std::size_t count) noexcept;

/** |value - expected| <= tolerance, rejecting NaN (NaN compares false). */
inline bool
within_tolerance(double value, double expected, double tolerance) noexcept
{
    return std::abs(value - expected) <= tolerance;
}

/** Norm conservation: trajectories renormalize after every stochastic
 *  channel, so any well-formed state has squared norm ~ 1. */
inline bool
norm_conserved(double norm_squared, double tolerance) noexcept
{
    return within_tolerance(norm_squared, 1.0, tolerance);
}

/** Kraus completeness: the branch probabilities of one channel evaluation
 *  must sum to ~ 1. */
inline bool
kraus_sum_ok(double probability_sum, double tolerance) noexcept
{
    return within_tolerance(probability_sum, 1.0, tolerance);
}

/** Branch-weight conservation: the children of a tree node partition its
 *  statistical weight, so the child weights must sum back to the parent's. */
inline bool
branch_weight_conserved(double parent_weight, double child_weight_sum,
                        double tolerance) noexcept
{
    return within_tolerance(child_weight_sum, parent_weight, tolerance);
}

}  // namespace integrity

/** Online integrity-monitor level (ExecutorOptions / RunOptions). */
enum class IntegrityLevel : std::uint8_t
{
    /** No checks: the production default, zero hot-path cost. */
    kOff = 0,
    /** Physical invariants (norm conservation) at segment/level boundaries
     *  and prefix lease points, plus transport exchange verification. */
    kBoundaries = 1,
    /** kBoundaries plus digest verification of sampled branch-snapshot
     *  copies at every level. */
    kSampled = 2,
};

/** Knobs for the online integrity monitors (core::ExecutorOptions /
 *  core::RunOptions carry one; the executor threads it to the backend). */
struct IntegrityOptions
{
    IntegrityLevel level = IntegrityLevel::kOff;
    /** Tolerance for norm / probability-sum invariants. */
    double norm_tolerance = 1e-9;
    /** kSampled: verify the snapshot of every Nth child per level
     *  (1 = every snapshot). */
    std::uint64_t sample_every = 1;
};

/** True when any check is enabled. */
inline bool
integrity_enabled(const IntegrityOptions& options) noexcept
{
    return options.level != IntegrityLevel::kOff;
}

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_INTEGRITY_H_
