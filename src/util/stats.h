#ifndef TQSIM_UTIL_STATS_H_
#define TQSIM_UTIL_STATS_H_

/**
 * @file
 * Small statistics helpers: running moments, confidence intervals, and the
 * geometric means used when aggregating per-benchmark speedups.
 */

#include <cstddef>
#include <vector>

namespace tqsim::util {

/** Welford-style accumulator for mean / variance of a stream of samples. */
class RunningStats
{
  public:
    /** Adds one sample. */
    void add(double x);

    /** Returns the number of samples added. */
    std::size_t count() const { return count_; }

    /** Returns the sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Returns the unbiased sample variance (0 with fewer than 2 samples). */
    double variance() const;

    /** Returns the unbiased sample standard deviation. */
    double stddev() const;

    /**
     * Returns the half-width of the normal-approximation confidence interval
     * for the mean, i.e. z * s / sqrt(n) (Eq. 2 of the paper with sigma
     * estimated from the sample).
     */
    double confidence_half_width(double z = 1.96) const;

    /** Returns the smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Returns the largest sample seen (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Returns the arithmetic mean of @p values (0 when empty). */
double mean(const std::vector<double>& values);

/** Returns the geometric mean of strictly positive @p values (0 when empty). */
double geometric_mean(const std::vector<double>& values);

/** Returns the median (average of middle two for even sizes; 0 when empty). */
double median(std::vector<double> values);

/**
 * Cochran's sample-size formula with finite-population correction —
 * Equation 5 of the paper.
 *
 * @param z confidence z-score (e.g. 1.96 for 95%).
 * @param epsilon margin of error in (0, 1).
 * @param p_hat estimated population proportion in [0, 1].
 * @param population total population size N (total shots).
 * @return the minimum sample size (>= 1, <= population).
 */
std::size_t cochran_sample_size(double z, double epsilon, double p_hat,
                                std::size_t population);

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_STATS_H_
