#ifndef TQSIM_UTIL_LOGGING_H_
#define TQSIM_UTIL_LOGGING_H_

/**
 * @file
 * Minimal leveled logging used by the experiment harnesses.
 *
 * The library itself is silent by default (level Warn); benches and examples
 * raise the level to Info to narrate progress.  Output goes to stderr so that
 * machine-readable tables printed on stdout stay clean.
 */

#include <sstream>
#include <string>

namespace tqsim::util {

/** Severity levels, ordered from most to least verbose. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/** Sets the global logging threshold. */
void set_log_level(LogLevel level);

/** Returns the current global logging threshold. */
LogLevel log_level();

/** Emits a single log record if @p level passes the threshold. */
void log_message(LogLevel level, const std::string& message);

namespace detail {

/** Stream-style log record builder; flushes on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    ~LogLine() { log_message(level_, stream_.str()); }

    template <typename T>
    LogLine&
    operator<<(const T& value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

/** Returns a stream that logs at Debug level when destroyed. */
inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
/** Returns a stream that logs at Info level when destroyed. */
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
/** Returns a stream that logs at Warn level when destroyed. */
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
/** Returns a stream that logs at Error level when destroyed. */
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace tqsim::util

#endif  // TQSIM_UTIL_LOGGING_H_
