#include "util/timer.h"

// Timer is header-only; this translation unit exists so the build system has
// a stable object for the util library and future non-inline additions.
