#include "util/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace tqsim::util::failpoint {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

/** FNV-1a over the site name: folds the site identity into the per-site
 *  RNG stream so distinct sites armed under one seed fire independently. */
std::uint64_t
fnv1a(const char* s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s != '\0'; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 0x100000001b3ULL;
    }
    return h;
}

struct SiteState
{
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

/** All mutable schedule state behind one mutex.  Only the armed slow path
 *  takes the lock; the disarmed fast path is the relaxed atomic load in
 *  armed(). */
struct Registry
{
    /// Lock-order rank "failpoint": a leaf — fail points fire from inside
    /// service/cache/pool critical sections, so nothing may be acquired
    /// while this is held (docs/static-analysis.md#lock-order).
    Mutex mutex;
    FailPlan plan TQSIM_GUARDED_BY(mutex);
    bool all_sites TQSIM_GUARDED_BY(mutex) = false;
    std::unordered_map<std::string, SiteState> sites TQSIM_GUARDED_BY(mutex);
};

Registry&
registry()
{
    static Registry r;
    return r;
}

bool
site_armed_locked(const Registry& r, const char* site) TQSIM_REQUIRES(r.mutex)
{
    if (r.all_sites) {
        return true;
    }
    for (const std::string& s : r.plan.sites) {
        if (s == site) {
            return true;
        }
    }
    return false;
}

/** Consumes one evaluation of @p site and decides whether it fires — the
 *  shared schedule behind fires() and maybe_corrupt().  Writes the
 *  evaluation index to @p out_index so corruption mode can derive its bit
 *  pick from the same (seed, site, n) triple. */
bool
fires_locked(Registry& r, const char* site, std::uint64_t* out_index)
    TQSIM_REQUIRES(r.mutex)
{
    SiteState& state = r.sites[site];
    const std::uint64_t n = state.evaluations++;
    *out_index = n;
    // Pure function of (seed, site, n): replayable from the plan alone.
    bool fire = false;
    if (r.plan.every > 0 && (n + 1) % r.plan.every == 0) {
        fire = true;
    } else if (r.plan.probability > 0.0) {
        Rng decision(mix_seed(r.plan.seed, fnv1a(site), n));
        fire = decision.uniform() < r.plan.probability;
    }
    if (fire) {
        ++state.fires;
    }
    return fire;
}

/** Env arming runs from a static initializer so the disarmed fast path
 *  never needs to consult the environment again. */
[[maybe_unused]] const bool g_env_armed = arm_from_env();

}  // namespace

void
arm(const FailPlan& plan)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    r.plan = plan;
    r.all_sites =
        plan.sites.size() == 1 && plan.sites.front() == "*";
    r.sites.clear();
    internal::g_armed.store(true, std::memory_order_relaxed);
}

bool
arm_from_env()
{
    // Read once at static-init time, before any worker threads exist.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("TQSIM_FAILPOINTS");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    FailPlan plan;
    const std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string field = spec.substr(pos, end - pos);
        pos = end + 1;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            continue;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "seed") {
            plan.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "p") {
            plan.probability = std::strtod(value.c_str(), nullptr);
        } else if (key == "every") {
            plan.every = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "mode") {
            plan.corrupt = value == "corrupt";
        } else if (key == "sites") {
            std::size_t spos = 0;
            while (spos <= value.size()) {
                std::size_t send = value.find(',', spos);
                if (send == std::string::npos) {
                    send = value.size();
                }
                if (send > spos) {
                    plan.sites.push_back(value.substr(spos, send - spos));
                }
                spos = send + 1;
            }
        }
    }
    if (plan.sites.empty() ||
        (plan.probability <= 0.0 && plan.every == 0)) {
        return false;
    }
    arm(plan);
    return true;
}

void
disarm()
{
    internal::g_armed.store(false, std::memory_order_relaxed);
}

bool
fires(const char* site)
{
    if (!armed()) {
        return false;
    }
    Registry& r = registry();
    MutexLock lock(r.mutex);
    // Throw-style sites are inert in corruption mode (and consume no
    // evaluation index, keeping every=N schedules exact in either mode).
    if (!internal::g_armed.load(std::memory_order_relaxed) ||
        r.plan.corrupt || !site_armed_locked(r, site)) {
        return false;
    }
    std::uint64_t n = 0;
    return fires_locked(r, site, &n);
}

bool
maybe_corrupt(const char* site, void* data, std::size_t bytes)
{
    if (!armed() || data == nullptr || bytes == 0) {
        return false;
    }
    std::uint64_t bit = 0;
    {
        Registry& r = registry();
        MutexLock lock(r.mutex);
        if (!internal::g_armed.load(std::memory_order_relaxed) ||
            !r.plan.corrupt || !site_armed_locked(r, site)) {
            return false;
        }
        std::uint64_t n = 0;
        if (!fires_locked(r, site, &n)) {
            return false;
        }
        // Same (seed, site, n) stream family as the fire decision: the
        // flipped bit is replayable from the plan alone.
        Rng pick(mix_seed(r.plan.seed, fnv1a(site), n));
        bit = pick.uniform_u64(static_cast<std::uint64_t>(bytes) * 8U);
    }
    // Flip outside the registry lock: the buffer belongs to the caller, and
    // the registry mutex is a lock-hierarchy leaf that must stay brief.
    auto* target = static_cast<unsigned char*>(data);
    target[bit / 8U] ^= static_cast<unsigned char>(1U << (bit % 8U));
    return true;
}

void
check(const char* site)
{
    if (fires(site)) {
        throw InjectedFault(site);
    }
}

void
check_alloc(const char* site)
{
    if (fires(site)) {
        throw InjectedBadAlloc();
    }
}

SiteStats
site_stats(const char* site)
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.sites.find(site);
    if (it == r.sites.end()) {
        return {};
    }
    return {it->second.evaluations, it->second.fires};
}

std::vector<std::pair<std::string, SiteStats>>
all_site_stats()
{
    std::vector<std::pair<std::string, SiteStats>> out;
    {
        Registry& r = registry();
        MutexLock lock(r.mutex);
        out.reserve(r.sites.size());
        for (const auto& [name, state] : r.sites) {
            out.emplace_back(name,
                             SiteStats{state.evaluations, state.fires});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

FailPlan
current_plan()
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    return r.plan;
}

std::uint64_t
total_fires()
{
    Registry& r = registry();
    MutexLock lock(r.mutex);
    std::uint64_t total = 0;
    for (const auto& [name, state] : r.sites) {
        total += state.fires;
    }
    return total;
}

}  // namespace tqsim::util::failpoint
