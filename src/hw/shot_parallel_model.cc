#include "hw/shot_parallel_model.h"

#include <stdexcept>

#include "hw/platform_presets.h"
#include "sim/types.h"

namespace tqsim::hw {

double
ShotParallelModel::batched_gate_seconds(int num_qubits,
                                        int parallel_shots) const
{
    if (parallel_shots < 1) {
        throw std::invalid_argument("parallel_shots must be >= 1");
    }
    // One launch advances all batched states; device throughput is shared.
    return device.gate_overhead_seconds +
           static_cast<double>(parallel_shots) *
               static_cast<double>(sim::dim(num_qubits)) /
               device.amp_throughput;
}

double
ShotParallelModel::sequential_gate_seconds(int num_qubits) const
{
    return batched_gate_seconds(num_qubits, 1);
}

double
ShotParallelModel::speedup(int num_qubits, int parallel_shots) const
{
    // Fixed shot budget S: sequential time = S * T(1); batched time =
    // (S / s) * T(s).  Speedup = s * T(1) / T(s), independent of S.
    return static_cast<double>(parallel_shots) *
           sequential_gate_seconds(num_qubits) /
           batched_gate_seconds(num_qubits, parallel_shots);
}

std::uint64_t
ShotParallelModel::memory_bytes(int num_qubits, int parallel_shots) const
{
    return static_cast<std::uint64_t>(parallel_shots) *
           sim::state_vector_bytes(num_qubits);
}

int
ShotParallelModel::max_parallel_shots(int num_qubits) const
{
    // 2^n * 16 bytes overflows std::uint64_t at n = 60.
    if (num_qubits >= 60) {
        return 0;
    }
    const std::uint64_t per_state = sim::state_vector_bytes(num_qubits);
    if (per_state == 0 || per_state > device.usable_memory_bytes) {
        return 0;
    }
    return static_cast<int>(device.usable_memory_bytes / per_state);
}

ShotParallelModel
a100_shot_parallel_model()
{
    return ShotParallelModel{a100_profile()};
}

}  // namespace tqsim::hw
