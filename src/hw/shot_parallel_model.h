#ifndef TQSIM_HW_SHOT_PARALLEL_MODEL_H_
#define TQSIM_HW_SHOT_PARALLEL_MODEL_H_

/**
 * @file
 * GPU parallel-shot saturation model (paper Fig. 8): batching s shots into
 * one kernel amortizes the launch overhead but shares fixed device
 * throughput, so the benefit vanishes once one state vector alone saturates
 * the GPU (beyond ~24 qubits on an A100).
 */

#include <cstdint>

#include "hw/backend_profile.h"

namespace tqsim::hw {

/** Parallel-shot timing model on a device profile. */
struct ShotParallelModel
{
    /** Device profile (amp_throughput + gate_overhead_seconds drive it). */
    BackendProfile device;

    /** Seconds per gate when @p parallel_shots states advance in one batch. */
    double batched_gate_seconds(int num_qubits, int parallel_shots) const;

    /** Seconds per gate per shot with sequential single-shot execution. */
    double sequential_gate_seconds(int num_qubits) const;

    /**
     * Fig. 8's metric: wall-time speedup of running a fixed shot budget with
     * @p parallel_shots -way batching vs one shot at a time.
     */
    double speedup(int num_qubits, int parallel_shots) const;

    /** Device memory consumed by @p parallel_shots state vectors. */
    std::uint64_t memory_bytes(int num_qubits, int parallel_shots) const;

    /** Largest batch size that fits device memory. */
    int max_parallel_shots(int num_qubits) const;
};

/** The paper's Fig. 8 configuration: A100-40GB. */
ShotParallelModel a100_shot_parallel_model();

}  // namespace tqsim::hw

#endif  // TQSIM_HW_SHOT_PARALLEL_MODEL_H_
