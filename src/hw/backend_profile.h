#ifndef TQSIM_HW_BACKEND_PROFILE_H_
#define TQSIM_HW_BACKEND_PROFILE_H_

/**
 * @file
 * Performance models of execution platforms.
 *
 * Substitution note (DESIGN.md): the paper measures real GPUs (V100/A100)
 * and several CPU hosts; this environment has one CPU core.  A
 * BackendProfile carries the two throughputs that drive every TQSim-level
 * result — gate throughput and state-copy throughput — so the scheduling
 * algebra (speedups, copy-cost bounds, memory ceilings) can be evaluated on
 * modeled hardware.  Profiles are calibrated to reproduce the normalized
 * copy costs of Fig. 10 and the memory capacities of Table 1.
 */

#include <cstdint>
#include <string>

#include "core/partitioner.h"

namespace tqsim::hw {

/** Gate/copy/memory model of one platform. */
struct BackendProfile
{
    /** Display name, e.g. "NVIDIA Tesla V100 16GB HBM2". */
    std::string name;
    /** Gate-kernel throughput in amplitudes/second. */
    double amp_throughput = 2.0e8;
    /** Fixed per-gate overhead (kernel launch / loop setup), seconds. */
    double gate_overhead_seconds = 0.0;
    /** State-copy bandwidth in bytes/second. */
    double copy_bandwidth = 8.0e9;
    /** Fixed per-copy overhead, seconds. */
    double copy_overhead_seconds = 0.0;
    /** Memory usable for state vectors, bytes. */
    std::uint64_t usable_memory_bytes = std::uint64_t{8} << 30;

    /** Modeled seconds for one gate pass over an n-qubit state. */
    double gate_seconds(int num_qubits) const;

    /** Modeled seconds for one n-qubit state copy. */
    double copy_seconds(int num_qubits) const;

    /** The paper's Fig. 10 metric: copy time / gate time at width n. */
    double copy_cost_in_gates(int num_qubits) const;

    /** Largest state-vector width that fits usable memory. */
    int max_statevector_qubits() const;
};

/**
 * Modeled wall time for executing @p plan of a @p gates_total -gate circuit
 * at width @p num_qubits on @p profile: tree gate work + copy overhead.
 * Noise passes are folded in via @p noise_pass_factor (>= 1), the expected
 * passes-per-gate multiplier.
 */
double estimate_plan_seconds(const core::PartitionPlan& plan, int num_qubits,
                             const BackendProfile& profile,
                             double noise_pass_factor = 1.0);

/**
 * Modeled TQSim-vs-baseline speedup on @p profile for the same workload:
 * estimate of baseline tree (N) divided by estimate of @p plan.
 */
double estimate_speedup(const core::PartitionPlan& plan, int num_qubits,
                        const BackendProfile& profile,
                        double noise_pass_factor = 1.0);

}  // namespace tqsim::hw

#endif  // TQSIM_HW_BACKEND_PROFILE_H_
