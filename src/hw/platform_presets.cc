#include "hw/platform_presets.h"

namespace tqsim::hw {

namespace {

/**
 * Builds a profile whose copy_cost_in_gates() equals @p cost_in_gates at
 * large widths (overheads ignored): copy_bandwidth =
 * 16 bytes * amp_throughput / cost.
 */
BackendProfile
calibrated(std::string name, double amp_throughput, double cost_in_gates,
           std::uint64_t memory_bytes)
{
    BackendProfile p;
    p.name = std::move(name);
    p.amp_throughput = amp_throughput;
    p.copy_bandwidth = 16.0 * amp_throughput / cost_in_gates;
    p.usable_memory_bytes = memory_bytes;
    return p;
}

}  // namespace

// Copy costs follow the Fig. 10 bars; gate throughputs are plausible
// per-platform magnitudes (GPUs ~ 1e10 amps/s, desktop CPUs ~ 5e8,
// 32-core servers ~ 5e9).

BackendProfile
rtx3060_profile()
{
    return calibrated("12GB NVIDIA RTX 3060 GDDR5", 6.0e9, 10.0,
                      std::uint64_t{12} << 30);
}

BackendProfile
ryzen3800x_profile()
{
    return calibrated("16GB AMD Ryzen 3800X DDR4", 6.0e8, 8.0,
                      std::uint64_t{16} << 30);
}

BackendProfile
corei7_profile()
{
    return calibrated("16GB Intel Core i7 DDR4", 5.0e8, 12.0,
                      std::uint64_t{16} << 30);
}

BackendProfile
xeon6138_profile()
{
    return calibrated("128GB Intel Xeon 6138 DDR4", 4.0e9, 35.0,
                      std::uint64_t{128} << 30);
}

BackendProfile
xeon6130_profile()
{
    return calibrated("192GB Intel Xeon 6130 DDR4", 3.6e9, 45.0,
                      std::uint64_t{192} << 30);
}

BackendProfile
v100_profile()
{
    return calibrated("16GB NVIDIA Tesla V100 HBM2", 1.6e10, 5.0,
                      std::uint64_t{16} << 30);
}

BackendProfile
a100_profile()
{
    BackendProfile p =
        calibrated("40GB NVIDIA A100 HBM2e", 2.0e10, 5.0,
                   std::uint64_t{40} << 30);
    // Kernel-launch overhead drives the Fig. 8 parallel-shot saturation.
    p.gate_overhead_seconds = 1.5e-4;
    return p;
}

std::vector<BackendProfile>
fig10_platforms()
{
    return {rtx3060_profile(),  ryzen3800x_profile(), corei7_profile(),
            xeon6138_profile(), xeon6130_profile(),   v100_profile()};
}

std::uint64_t
HpcSystem::total_usable_gpu_bytes() const
{
    return static_cast<std::uint64_t>(usable_gpus) * usable_gpu_memory_bytes;
}

double
HpcSystem::baseline_memory_utilization() const
{
    const auto total = static_cast<double>(
        static_cast<std::uint64_t>(gpus_per_node) * gpu_memory_bytes +
        cpu_memory_bytes);
    return static_cast<double>(total_usable_gpu_bytes()) / total;
}

std::vector<HpcSystem>
hpc_systems()
{
    // Table 1 + Sec. 3.3's usable-memory discussion: Frontier 64GB usable
    // of each 128GB MI250X; Perlmutter 32GB of each 40GB A100; Summit uses
    // 4 of 6 V100s with 8GB usable each.
    return {
        HpcSystem{"Frontier (ORNL)", 4, std::uint64_t{128} << 30,
                  std::uint64_t{64} << 30, 4, std::uint64_t{512} << 30},
        HpcSystem{"Summit (ORNL)", 6, std::uint64_t{16} << 30,
                  std::uint64_t{8} << 30, 4, std::uint64_t{512} << 30},
        HpcSystem{"Perlmutter (NERSC)", 4, std::uint64_t{40} << 30,
                  std::uint64_t{32} << 30, 4, std::uint64_t{256} << 30},
    };
}

}  // namespace tqsim::hw
