#ifndef TQSIM_HW_PLATFORM_PRESETS_H_
#define TQSIM_HW_PLATFORM_PRESETS_H_

/**
 * @file
 * Calibrated profiles for the six systems of Fig. 10, the A100 used in
 * Figs. 8/12, and the HPC node configurations of Table 1.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "hw/backend_profile.h"

namespace tqsim::hw {

/** @name Fig. 10 platforms (3 desktop, 2 server CPU, 1 datacenter GPU)
 *  @{ */
BackendProfile rtx3060_profile();
BackendProfile ryzen3800x_profile();
BackendProfile corei7_profile();
BackendProfile xeon6138_profile();
BackendProfile xeon6130_profile();
BackendProfile v100_profile();
/** @} */

/** A100-40GB (the paper's Fig. 8 / CuQuantum host). */
BackendProfile a100_profile();

/** All Fig. 10 platforms in the figure's left-to-right order. */
std::vector<BackendProfile> fig10_platforms();

/** One Table 1 HPC system. */
struct HpcSystem
{
    std::string name;
    int gpus_per_node;
    std::uint64_t gpu_memory_bytes;      // per-GPU
    std::uint64_t usable_gpu_memory_bytes;  // per-GPU after metadata
    int usable_gpus;                      // GPUs usable for the state
    std::uint64_t cpu_memory_bytes;      // per-node host memory

    /** Total usable GPU memory for state vectors. */
    std::uint64_t total_usable_gpu_bytes() const;
    /** Fraction of (GPU + CPU) memory usable by the baseline simulator. */
    double baseline_memory_utilization() const;
};

/** Frontier, Summit, and Perlmutter (Table 1). */
std::vector<HpcSystem> hpc_systems();

}  // namespace tqsim::hw

#endif  // TQSIM_HW_PLATFORM_PRESETS_H_
