#include "hw/backend_profile.h"

#include <cmath>
#include <stdexcept>

#include "sim/types.h"

namespace tqsim::hw {

double
BackendProfile::gate_seconds(int num_qubits) const
{
    return gate_overhead_seconds +
           static_cast<double>(sim::dim(num_qubits)) / amp_throughput;
}

double
BackendProfile::copy_seconds(int num_qubits) const
{
    return copy_overhead_seconds +
           static_cast<double>(sim::state_vector_bytes(num_qubits)) /
               copy_bandwidth;
}

double
BackendProfile::copy_cost_in_gates(int num_qubits) const
{
    return copy_seconds(num_qubits) / gate_seconds(num_qubits);
}

int
BackendProfile::max_statevector_qubits() const
{
    int n = 0;
    while (sim::state_vector_bytes(n + 1) <= usable_memory_bytes && n < 60) {
        ++n;
    }
    return n;
}

double
estimate_plan_seconds(const core::PartitionPlan& plan, int num_qubits,
                      const BackendProfile& profile, double noise_pass_factor)
{
    if (noise_pass_factor < 1.0) {
        throw std::invalid_argument("noise_pass_factor must be >= 1");
    }
    const std::vector<std::size_t> gates = plan.gates_per_level();
    double seconds = 0.0;
    for (std::size_t level = 0; level < plan.num_levels(); ++level) {
        seconds += static_cast<double>(plan.tree.instances(level)) *
                   static_cast<double>(gates[level]) * noise_pass_factor *
                   profile.gate_seconds(num_qubits);
    }
    seconds += static_cast<double>(plan.tree.total_nodes() - 1) *
               profile.copy_seconds(num_qubits);
    return seconds;
}

double
estimate_speedup(const core::PartitionPlan& plan, int num_qubits,
                 const BackendProfile& profile, double noise_pass_factor)
{
    std::size_t total_gates = 0;
    for (std::size_t g : plan.gates_per_level()) {
        total_gates += g;
    }
    const core::PartitionPlan baseline{
        core::TreeStructure::baseline(plan.tree.total_outcomes()),
        {0, total_gates}};
    const double base =
        estimate_plan_seconds(baseline, num_qubits, profile,
                              noise_pass_factor);
    const double tree =
        estimate_plan_seconds(plan, num_qubits, profile, noise_pass_factor);
    return base / tree;
}

}  // namespace tqsim::hw
