#ifndef TQSIM_CIRCUITS_QPE_H_
#define TQSIM_CIRCUITS_QPE_H_

/**
 * @file
 * Quantum Phase Estimation circuits (the QPE benchmark family; QPE_9 is the
 * paper's noise-sensitivity workload in Figs. 16/17).
 */

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds the QPE circuit estimating the eigenphase @p theta of the phase
 * gate U = P(2 pi theta) on its |1> eigenstate.
 *
 * Layout: counting qubits 0 .. width-2 (bit k controls U^{2^k}), eigenstate
 * qubit width-1 (prepared in |1>).  The counting register is post-processed
 * by a decomposed inverse QFT (with swaps), so the ideal measured counting
 * value approximates round(theta * 2^(width-1)).
 *
 * When theta is an exact (width-1)-bit fraction the ideal output is a single
 * bitstring; otherwise it is the narrow bell curve the paper highlights.
 */
sim::Circuit qpe(int width, double theta, bool decompose_cphase = true);

/** The counting value with the highest ideal probability. */
std::uint64_t qpe_expected_counting_value(int width, double theta);

/** The full expected basis state (counting value + eigenstate bit set). */
std::uint64_t qpe_expected_outcome(int width, double theta);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QPE_H_
