#ifndef TQSIM_CIRCUITS_MUL_H_
#define TQSIM_CIRCUITS_MUL_H_

/**
 * @file
 * Shift-and-add quantum multiplier (the MUL benchmark family).
 *
 * Computes p = a * b for classical inputs a (ka bits) and b (kb bits) using
 * Toffoli-gated partial products and a Cuccaro ripple-carry accumulation:
 *
 *   for i in 0..ka-1:
 *     t   <- a_i ? b : 0        (kb Toffolis)
 *     p[i..i+kb] += t            (Cuccaro adder, carry-out into p_{i+kb})
 *     t   <- 0                   (uncompute)
 *
 * Register layout (width = 2*ka + 3*kb + 1):
 *   a       qubits [0, ka)
 *   b       qubits [ka, ka+kb)
 *   p       qubits [ka+kb, 2ka+2kb)         (ka + kb product bits)
 *   t       qubits [2ka+2kb, 2ka+3kb)       (partial-product scratch)
 *   carry   qubit  2ka+3kb                  (adder carry-in ancilla)
 */

#include <cstdint>

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds the multiplier circuit with inputs prepared by X gates.
 *
 * @param ka bit-width of operand a (>= 1).
 * @param kb bit-width of operand b (>= 1).
 * @param a_value initial a (< 2^ka).
 * @param b_value initial b (< 2^kb).
 * @param decompose_ccx expand Toffolis into Clifford+T.
 */
sim::Circuit multiplier(int ka, int kb, std::uint64_t a_value,
                        std::uint64_t b_value, bool decompose_ccx = false);

/** Circuit width for a (ka x kb)-bit multiplier. */
int multiplier_width(int ka, int kb);

/** Extracts the product register value from a measured basis state. */
std::uint64_t multiplier_decode_product(std::uint64_t outcome, int ka, int kb);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_MUL_H_
