#ifndef TQSIM_CIRCUITS_QASM_H_
#define TQSIM_CIRCUITS_QASM_H_

/**
 * @file
 * OpenQASM 2.0 interchange: export any Circuit to QASM text and import the
 * subset this library emits.  This is what lets the benchmark suite be fed
 * to (or taken from) mainstream toolchains such as Qiskit or QASMBench.
 *
 * Export rules:
 *  - gates with a qelib1 name (x, h, s, t, rx, cx, cz, swap, ccx, cp, rzz,
 *    u3, ...) are emitted directly;
 *  - custom 1q unitaries are converted to u3 via ZYZ decomposition (the
 *    per-gate global phase is dropped — physically unobservable);
 *  - fsim / iswap / custom 2q unitaries are emitted against `opaque`
 *    declarations (legal QASM 2.0) and round-trip through our importer.
 */

#include <string>

#include "sim/circuit.h"
#include "sim/gate.h"

namespace tqsim::circuits {

/** u3 angles (plus the dropped global phase) of a 2x2 unitary. */
struct ZyzAngles
{
    double theta;
    double phi;
    double lambda;
    double global_phase;
};

/**
 * Decomposes a 2x2 unitary as e^{i global_phase} * u3(theta, phi, lambda).
 * @p m must be unitary within ~1e-9.
 */
ZyzAngles zyz_decompose(const sim::Matrix& m);

/** Serializes @p circuit as an OpenQASM 2.0 program. */
std::string to_qasm(const sim::Circuit& circuit);

/**
 * Parses an OpenQASM 2.0 program produced by to_qasm() (single qreg;
 * qelib1 subset + the opaque fsim/iswap declarations; measure/barrier
 * statements are ignored).  Throws std::invalid_argument on anything it
 * cannot understand.
 */
sim::Circuit from_qasm(const std::string& text);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QASM_H_
