#include "circuits/qpe.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "circuits/qft.h"

namespace tqsim::circuits {

using sim::Circuit;

Circuit
qpe(int width, double theta, bool decompose_cphase)
{
    if (width < 2) {
        throw std::invalid_argument("qpe requires width >= 2");
    }
    const int t = width - 1;      // counting qubits
    const int target = width - 1;  // eigenstate qubit index
    Circuit c(width, "qpe_n" + std::to_string(width));

    c.x(target);  // prepare the |1> eigenstate of P(2 pi theta)
    for (int k = 0; k < t; ++k) {
        c.h(k);
    }
    for (int k = 0; k < t; ++k) {
        // Controlled-U^{2^k}: a single controlled phase of 2 pi theta 2^k.
        const double lambda = 2.0 * M_PI * theta * std::pow(2.0, k);
        append_cphase(c, k, target, lambda, decompose_cphase);
    }
    // Inverse QFT (with swaps) on the counting register.
    const Circuit iqft =
        qft(t, decompose_cphase, /*final_swaps=*/true).inverse();
    for (const sim::Gate& g : iqft.gates()) {
        c.append(g);
    }
    return c;
}

std::uint64_t
qpe_expected_counting_value(int width, double theta)
{
    const int t = width - 1;
    const double scaled = theta * std::pow(2.0, t);
    const auto rounded = static_cast<std::uint64_t>(std::llround(scaled));
    return rounded % (std::uint64_t{1} << t);
}

std::uint64_t
qpe_expected_outcome(int width, double theta)
{
    return qpe_expected_counting_value(width, theta) |
           (std::uint64_t{1} << (width - 1));
}

}  // namespace tqsim::circuits
