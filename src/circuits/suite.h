#ifndef TQSIM_CIRCUITS_SUITE_H_
#define TQSIM_CIRCUITS_SUITE_H_

/**
 * @file
 * The paper's 48-circuit benchmark suite: 8 families x 6 circuits each
 * (Table 2).  Two scales are provided:
 *
 *  - kPaper   — widths/lengths mirroring the paper (up to 25 qubits; meant
 *               for characteristics reporting and scaled experiments);
 *  - kReduced — the same families clamped to <= 13 qubits so the full
 *               Fig. 11 / Fig. 14 sweeps complete in seconds on one core.
 */

#include <string>
#include <vector>

#include "sim/circuit.h"

namespace tqsim::circuits {

/** The eight benchmark families of Table 2. */
enum class Family { kAdder, kBV, kMul, kQAOA, kQFT, kQPE, kQSC, kQV };

/** All families in Table 2 order. */
const std::vector<Family>& all_families();

/** Returns the family mnemonic, e.g. "QFT". */
std::string family_name(Family family);

/** One suite entry. */
struct BenchmarkCase
{
    Family family;
    std::string name;
    sim::Circuit circuit;
};

/** Suite sizing. */
enum class SuiteScale { kPaper, kReduced };

/** Returns the six circuits of one family at the given scale. */
std::vector<BenchmarkCase> family_suite(Family family, SuiteScale scale);

/** Returns all 48 circuits (8 families x 6) at the given scale. */
std::vector<BenchmarkCase> benchmark_suite(SuiteScale scale);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_SUITE_H_
