#ifndef TQSIM_CIRCUITS_QV_H_
#define TQSIM_CIRCUITS_QV_H_

/**
 * @file
 * Quantum Volume model circuits (Cross et al. 2019): layers of random qubit
 * permutations followed by random two-qubit blocks, each emitted as the
 * universal 3-CNOT + 8 U3 decomposition (11 gates per block, matching the
 * paper's QV gate counts of 33n per 6 layers).
 */

#include <cstdint>

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds a QV circuit.
 *
 * @param num_qubits circuit width (>= 2).
 * @param layers number of permutation + block layers (paper uses 6).
 * @param seed RNG seed for permutations and block angles.
 */
sim::Circuit quantum_volume(int num_qubits, int layers, std::uint64_t seed);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QV_H_
