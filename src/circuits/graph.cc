#include "circuits/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace tqsim::circuits {

Graph::Graph(int num_vertices) : num_vertices_(num_vertices)
{
    if (num_vertices < 1) {
        throw std::invalid_argument("Graph requires >= 1 vertex");
    }
}

Graph
Graph::random(int num_vertices, double edge_probability, std::uint64_t seed)
{
    if (edge_probability < 0.0 || edge_probability > 1.0) {
        throw std::invalid_argument("edge probability must be in [0, 1]");
    }
    Graph g(num_vertices);
    util::Rng rng(seed);
    for (int u = 0; u < num_vertices; ++u) {
        for (int v = u + 1; v < num_vertices; ++v) {
            if (rng.uniform() < edge_probability) {
                g.add_edge(u, v);
            }
        }
    }
    return g;
}

Graph
Graph::star(int num_vertices)
{
    Graph g(num_vertices);
    for (int v = 1; v < num_vertices; ++v) {
        g.add_edge(0, v);
    }
    return g;
}

Graph
Graph::ring(int num_vertices)
{
    Graph g(num_vertices);
    if (num_vertices < 3) {
        throw std::invalid_argument("ring requires >= 3 vertices");
    }
    for (int v = 0; v < num_vertices; ++v) {
        g.add_edge(v, (v + 1) % num_vertices);
    }
    return g;
}

Graph
Graph::regular3(int num_vertices, std::uint64_t seed)
{
    if (num_vertices < 4 || num_vertices % 2 != 0) {
        throw std::invalid_argument(
            "regular3 requires an even vertex count >= 4");
    }
    util::Rng rng(seed);
    // Pairing (configuration) model with rejection of multi-edges/loops.
    for (int attempt = 0; attempt < 10000; ++attempt) {
        std::vector<int> stubs;
        stubs.reserve(static_cast<std::size_t>(num_vertices) * 3);
        for (int v = 0; v < num_vertices; ++v) {
            stubs.insert(stubs.end(), 3, v);
        }
        // Fisher–Yates shuffle.
        for (std::size_t i = stubs.size(); i > 1; --i) {
            std::swap(stubs[i - 1], stubs[rng.uniform_u64(i)]);
        }
        Graph g(num_vertices);
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            const int u = stubs[i];
            const int v = stubs[i + 1];
            if (u == v || g.has_edge(u, v)) {
                ok = false;
                break;
            }
            g.add_edge(u, v);
        }
        if (ok) {
            return g;
        }
    }
    throw std::runtime_error("regular3: pairing model failed to converge");
}

void
Graph::add_edge(int u, int v)
{
    if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
        throw std::out_of_range("add_edge: vertex out of range");
    }
    if (u == v) {
        return;
    }
    if (u > v) {
        std::swap(u, v);
    }
    if (!has_edge(u, v)) {
        edges_.emplace_back(u, v);
    }
}

bool
Graph::has_edge(int u, int v) const
{
    if (u > v) {
        std::swap(u, v);
    }
    return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
           edges_.end();
}

int
Graph::degree(int v) const
{
    int d = 0;
    for (const auto& [a, b] : edges_) {
        if (a == v || b == v) {
            ++d;
        }
    }
    return d;
}

int
Graph::cut_value(std::uint64_t assignment) const
{
    int cut = 0;
    for (const auto& [a, b] : edges_) {
        const bool ca = (assignment >> a) & 1;
        const bool cb = (assignment >> b) & 1;
        if (ca != cb) {
            ++cut;
        }
    }
    return cut;
}

int
Graph::max_cut_brute_force() const
{
    if (num_vertices_ > 24) {
        throw std::invalid_argument("max_cut_brute_force limited to 24 vertices");
    }
    int best = 0;
    const std::uint64_t total = std::uint64_t{1} << num_vertices_;
    for (std::uint64_t a = 0; a < total; ++a) {
        best = std::max(best, cut_value(a));
    }
    return best;
}

}  // namespace tqsim::circuits
