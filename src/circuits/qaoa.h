#ifndef TQSIM_CIRCUITS_QAOA_H_
#define TQSIM_CIRCUITS_QAOA_H_

/**
 * @file
 * QAOA max-cut circuits (paper Sec. 5.7 / Fig. 18) plus the classical cost
 * evaluation used to draw cost landscapes.
 */

#include <vector>

#include "circuits/graph.h"
#include "metrics/distribution.h"
#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds the p-layer QAOA max-cut ansatz for @p graph.
 *
 * Per layer l: cost unitary exp(-i gamma_l/2 * Z_u Z_v) per edge (emitted as
 * CX·RZ·CX when @p decompose_rzz) followed by mixer RX(2 beta_l) per vertex.
 * Layer count is betas.size() (== gammas.size()).
 */
sim::Circuit qaoa_maxcut(const Graph& graph, const std::vector<double>& betas,
                         const std::vector<double>& gammas,
                         bool decompose_rzz = true);

/**
 * Expected cut value sum_x P(x) * cut(x) — the (negated) QAOA cost function
 * evaluated from an output distribution.
 */
double expected_cut_value(const metrics::Distribution& dist,
                          const Graph& graph);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QAOA_H_
