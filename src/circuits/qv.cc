#include "circuits/qv.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tqsim::circuits {

using sim::Circuit;

namespace {

void
random_u3(Circuit& c, int q, util::Rng& rng)
{
    const double theta = rng.uniform() * M_PI;
    const double phi = rng.uniform() * 2.0 * M_PI;
    const double lambda = rng.uniform() * 2.0 * M_PI;
    c.u3(q, theta, phi, lambda);
}

/** A random SU(4)-style block: 8 U3 + 3 CX (the universal 3-CNOT form). */
void
random_block(Circuit& c, int a, int b, util::Rng& rng)
{
    random_u3(c, a, rng);
    random_u3(c, b, rng);
    c.cx(a, b);
    random_u3(c, a, rng);
    random_u3(c, b, rng);
    c.cx(a, b);
    random_u3(c, a, rng);
    random_u3(c, b, rng);
    c.cx(a, b);
    random_u3(c, a, rng);
    random_u3(c, b, rng);
}

}  // namespace

Circuit
quantum_volume(int num_qubits, int layers, std::uint64_t seed)
{
    if (num_qubits < 2) {
        throw std::invalid_argument("quantum_volume requires >= 2 qubits");
    }
    if (layers < 1) {
        throw std::invalid_argument("quantum_volume requires >= 1 layer");
    }
    Circuit c(num_qubits, "qv_n" + std::to_string(num_qubits));
    util::Rng rng(seed);
    std::vector<int> perm(num_qubits);
    for (int layer = 0; layer < layers; ++layer) {
        std::iota(perm.begin(), perm.end(), 0);
        for (std::size_t i = perm.size(); i > 1; --i) {
            std::swap(perm[i - 1], perm[rng.uniform_u64(i)]);
        }
        for (int p = 0; p + 1 < num_qubits; p += 2) {
            random_block(c, perm[p], perm[p + 1], rng);
        }
    }
    return c;
}

}  // namespace tqsim::circuits
