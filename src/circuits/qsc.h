#ifndef TQSIM_CIRCUITS_QSC_H_
#define TQSIM_CIRCUITS_QSC_H_

/**
 * @file
 * Quantum Supremacy Circuits (QSC): Sycamore-style random circuits used for
 * hardware benchmarking (Arute et al. 2019) — structureless and hard to
 * simulate, which is why the paper uses them as stress benchmarks.
 *
 * Each cycle applies a random sqrt(X)/sqrt(Y)/sqrt(W) to every qubit (never
 * repeating the previous choice on the same qubit) followed by fSim(pi/2,
 * pi/6) entanglers on an alternating linear-chain pattern.
 */

#include <cstdint>

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds a QSC instance.
 *
 * @param num_qubits circuit width (>= 2).
 * @param cycles number of (1q layer + entangler layer) cycles (>= 1).
 * @param seed RNG seed for the single-qubit gate choices.
 */
sim::Circuit qsc(int num_qubits, int cycles, std::uint64_t seed);

/** The sqrt(X) matrix used in QSC layers. */
sim::Matrix sqrt_x_matrix();

/** The sqrt(Y) matrix used in QSC layers. */
sim::Matrix sqrt_y_matrix();

/** The sqrt(W) matrix, W = (X + Y)/sqrt(2). */
sim::Matrix sqrt_w_matrix();

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QSC_H_
