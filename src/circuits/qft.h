#ifndef TQSIM_CIRCUITS_QFT_H_
#define TQSIM_CIRCUITS_QFT_H_

/**
 * @file
 * Quantum Fourier Transform circuits (the QFT benchmark family and the
 * paper's Fig. 1 motivating workload).
 */

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds the n-qubit QFT.
 *
 * With @p final_swaps the output matches the standard DFT bit order
 * QFT|x> = (1/sqrt(N)) sum_y e^{2 pi i x y / N} |y>; without it the output
 * is bit-reversed (the cheaper convention the benchmark family uses).
 *
 * @param num_qubits circuit width.
 * @param decompose_cphase emit each controlled phase as 2 CX + 3 P
 *        (paper-style gate counts); otherwise use native kCPhase.
 * @param final_swaps append the bit-reversal swap network.
 */
sim::Circuit qft(int num_qubits, bool decompose_cphase = true,
                 bool final_swaps = false);

/**
 * Appends a controlled-phase(lambda) between @p control and @p target to
 * @p circuit, decomposed into 2 CX + 3 P when @p decompose is set.
 */
void append_cphase(sim::Circuit& circuit, int control, int target,
                   double lambda, bool decompose);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_QFT_H_
