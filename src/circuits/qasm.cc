#include "circuits/qasm.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/assert.h"

namespace tqsim::circuits {

using sim::Circuit;
using sim::Complex;
using sim::Gate;
using sim::GateKind;
using sim::Matrix;

ZyzAngles
zyz_decompose(const Matrix& m)
{
    if (m.size() != 4) {
        throw std::invalid_argument("zyz_decompose: need a 2x2 matrix");
    }
    if (!sim::is_unitary(m, 2, 1e-8)) {
        throw std::invalid_argument("zyz_decompose: matrix is not unitary");
    }
    const double a00 = std::abs(m[0]);
    const double a10 = std::abs(m[2]);
    ZyzAngles out{};
    out.theta = 2.0 * std::atan2(a10, a00);
    if (a00 > 1e-12) {
        out.global_phase = std::arg(m[0]);
        out.phi = (a10 > 1e-12) ? std::arg(m[2]) - out.global_phase : 0.0;
        // U11 = e^{i(g + phi + lambda)} cos(theta/2) when cos != 0.
        if (a00 > 1e-12 && std::abs(m[3]) > 1e-12) {
            out.lambda = std::arg(m[3]) - out.global_phase - out.phi;
        } else if (a10 > 1e-12) {
            out.lambda = std::arg(-m[1]) - out.global_phase;
        }
    } else {
        // theta = pi: U00 = U11 = 0.
        out.global_phase = std::arg(m[2]);  // fold into phi reference
        out.phi = 0.0;
        out.lambda = std::arg(-m[1]) - out.global_phase;
    }
    return out;
}

namespace {

std::string
fmt_angle(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Emits "name(p1,p2)" or just "name". */
std::string
call_with_params(const std::string& name, const std::vector<double>& params)
{
    if (params.empty()) {
        return name;
    }
    std::string out = name + "(";
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i) {
            out += ",";
        }
        out += fmt_angle(params[i]);
    }
    out += ")";
    return out;
}

std::string
operands(const std::vector<int>& qubits)
{
    std::string out;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i) {
            out += ",";
        }
        out += "q[" + std::to_string(qubits[i]) + "]";
    }
    return out;
}

}  // namespace

std::string
to_qasm(const Circuit& circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    // Extensions beyond qelib1, declared opaquely so the file stays valid.
    os << "opaque fsim(theta,phi) a,b;\n";
    os << "opaque iswap a,b;\n";
    os << "opaque sxdg a;\n";
    os << "qreg q[" << circuit.num_qubits() << "];\n";
    os << "creg c[" << circuit.num_qubits() << "];\n";

    for (const Gate& g : circuit.gates()) {
        std::string name;
        std::vector<double> params = g.params();
        switch (g.kind()) {
          case GateKind::kI:      name = "id"; break;
          case GateKind::kX:      name = "x"; break;
          case GateKind::kY:      name = "y"; break;
          case GateKind::kZ:      name = "z"; break;
          case GateKind::kH:      name = "h"; break;
          case GateKind::kS:      name = "s"; break;
          case GateKind::kSdg:    name = "sdg"; break;
          case GateKind::kT:      name = "t"; break;
          case GateKind::kTdg:    name = "tdg"; break;
          case GateKind::kSX:     name = "sx"; break;
          case GateKind::kSXdg:   name = "sxdg"; break;
          case GateKind::kRX:     name = "rx"; break;
          case GateKind::kRY:     name = "ry"; break;
          case GateKind::kRZ:     name = "rz"; break;
          case GateKind::kPhase:  name = "p"; break;
          case GateKind::kU3:     name = "u3"; break;
          case GateKind::kCX:     name = "cx"; break;
          case GateKind::kCZ:     name = "cz"; break;
          case GateKind::kCPhase: name = "cp"; break;
          case GateKind::kSWAP:   name = "swap"; break;
          case GateKind::kISwap:  name = "iswap"; break;
          case GateKind::kRZZ:    name = "rzz"; break;
          case GateKind::kFSim:   name = "fsim"; break;
          case GateKind::kCCX:    name = "ccx"; break;
          case GateKind::kUnitary1q: {
            const ZyzAngles angles = zyz_decompose(g.matrix());
            name = "u3";
            params = {angles.theta, angles.phi, angles.lambda};
            break;
          }
          case GateKind::kUnitary2q:
          case GateKind::kUnitaryKq:
            throw std::invalid_argument(
                "to_qasm: custom multi-qubit unitary \"" + g.name() +
                "\" has no QASM form");
        }
        os << call_with_params(name, params) << ' ' << operands(g.qubits())
           << ";\n";
    }
    return os.str();
}

namespace {

/** Tokenizer-less recursive-descent-ish line parser for our QASM subset. */
class QasmParser
{
  public:
    explicit QasmParser(const std::string& text) : text_(text) {}

    Circuit
    parse()
    {
        int width = -1;
        std::vector<Gate> gates;
        std::istringstream lines(text_);
        std::string raw;
        while (std::getline(lines, raw)) {
            std::string line = strip(raw);
            if (line.empty() || starts_with(line, "//")) {
                continue;
            }
            if (line.back() != ';') {
                throw std::invalid_argument("qasm: missing ';' in: " + raw);
            }
            line.pop_back();
            line = strip(line);
            if (starts_with(line, "OPENQASM") ||
                starts_with(line, "include") ||
                starts_with(line, "opaque") || starts_with(line, "creg") ||
                starts_with(line, "barrier") ||
                starts_with(line, "measure")) {
                continue;
            }
            if (starts_with(line, "qreg")) {
                width = parse_qreg(line);
                continue;
            }
            if (width < 0) {
                throw std::invalid_argument(
                    "qasm: gate before qreg declaration");
            }
            gates.push_back(parse_gate(line));
        }
        if (width < 1) {
            throw std::invalid_argument("qasm: no qreg declaration found");
        }
        Circuit c(width, "qasm");
        for (Gate& g : gates) {
            c.append(std::move(g));
        }
        return c;
    }

  private:
    static std::string
    strip(const std::string& s)
    {
        std::size_t b = 0;
        std::size_t e = s.size();
        while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
            ++b;
        }
        while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
            --e;
        }
        return s.substr(b, e - b);
    }

    static bool
    starts_with(const std::string& s, const char* prefix)
    {
        return s.rfind(prefix, 0) == 0;
    }

    static int
    parse_qreg(const std::string& line)
    {
        // "qreg q[N]"
        const std::size_t open = line.find('[');
        const std::size_t close = line.find(']');
        if (open == std::string::npos || close == std::string::npos ||
            close <= open + 1) {
            throw std::invalid_argument("qasm: malformed qreg: " + line);
        }
        return std::stoi(line.substr(open + 1, close - open - 1));
    }

    static std::vector<double>
    parse_params(const std::string& inside)
    {
        std::vector<double> params;
        std::istringstream ss(inside);
        std::string item;
        while (std::getline(ss, item, ',')) {
            const std::string t = strip(item);
            if (t == "pi") {
                params.push_back(M_PI);
            } else if (t == "-pi") {
                params.push_back(-M_PI);
            } else {
                std::size_t used = 0;
                const double v = std::stod(t, &used);
                if (used == t.size()) {
                    params.push_back(v);
                } else if (t.compare(used, std::string::npos, "*pi") == 0) {
                    params.push_back(v * M_PI);
                } else if (t.compare(used, std::string::npos, "/pi") == 0) {
                    params.push_back(v / M_PI);
                } else {
                    throw std::invalid_argument("qasm: bad parameter: " + t);
                }
            }
        }
        return params;
    }

    static std::vector<int>
    parse_operands(const std::string& s)
    {
        std::vector<int> qubits;
        std::istringstream ss(s);
        std::string item;
        while (std::getline(ss, item, ',')) {
            const std::string t = strip(item);
            const std::size_t open = t.find('[');
            const std::size_t close = t.find(']');
            if (open == std::string::npos || close == std::string::npos) {
                throw std::invalid_argument("qasm: bad operand: " + t);
            }
            qubits.push_back(
                std::stoi(t.substr(open + 1, close - open - 1)));
        }
        return qubits;
    }

    static Gate
    parse_gate(const std::string& line)
    {
        // "<name>[(p,...)] q[a],q[b],..."
        std::size_t i = 0;
        while (i < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[i])) ||
                line[i] == '_')) {
            ++i;
        }
        const std::string name = line.substr(0, i);
        std::vector<double> params;
        if (i < line.size() && line[i] == '(') {
            const std::size_t close = line.find(')', i);
            if (close == std::string::npos) {
                throw std::invalid_argument("qasm: unclosed '(': " + line);
            }
            params = parse_params(line.substr(i + 1, close - i - 1));
            i = close + 1;
        }
        const std::vector<int> q = parse_operands(line.substr(i));

        auto need = [&](std::size_t nq, std::size_t np) {
            if (q.size() != nq || params.size() != np) {
                throw std::invalid_argument("qasm: bad arity for " + name);
            }
        };
        if (name == "id") { need(1, 0); return Gate::i(q[0]); }
        if (name == "x") { need(1, 0); return Gate::x(q[0]); }
        if (name == "y") { need(1, 0); return Gate::y(q[0]); }
        if (name == "z") { need(1, 0); return Gate::z(q[0]); }
        if (name == "h") { need(1, 0); return Gate::h(q[0]); }
        if (name == "s") { need(1, 0); return Gate::s(q[0]); }
        if (name == "sdg") { need(1, 0); return Gate::sdg(q[0]); }
        if (name == "t") { need(1, 0); return Gate::t(q[0]); }
        if (name == "tdg") { need(1, 0); return Gate::tdg(q[0]); }
        if (name == "sx") { need(1, 0); return Gate::sx(q[0]); }
        if (name == "sxdg") { need(1, 0); return Gate::sxdg(q[0]); }
        if (name == "rx") { need(1, 1); return Gate::rx(q[0], params[0]); }
        if (name == "ry") { need(1, 1); return Gate::ry(q[0], params[0]); }
        if (name == "rz") { need(1, 1); return Gate::rz(q[0], params[0]); }
        if (name == "p" || name == "u1") {
            need(1, 1);
            return Gate::phase(q[0], params[0]);
        }
        if (name == "u3" || name == "u") {
            need(1, 3);
            return Gate::u3(q[0], params[0], params[1], params[2]);
        }
        if (name == "cx") { need(2, 0); return Gate::cx(q[0], q[1]); }
        if (name == "cz") { need(2, 0); return Gate::cz(q[0], q[1]); }
        if (name == "cp" || name == "cu1") {
            need(2, 1);
            return Gate::cphase(q[0], q[1], params[0]);
        }
        if (name == "swap") { need(2, 0); return Gate::swap(q[0], q[1]); }
        if (name == "iswap") { need(2, 0); return Gate::iswap(q[0], q[1]); }
        if (name == "rzz") {
            need(2, 1);
            return Gate::rzz(q[0], q[1], params[0]);
        }
        if (name == "fsim") {
            need(2, 2);
            return Gate::fsim(q[0], q[1], params[0], params[1]);
        }
        if (name == "ccx") {
            need(3, 0);
            return Gate::ccx(q[0], q[1], q[2]);
        }
        throw std::invalid_argument("qasm: unsupported gate: " + name);
    }

    const std::string& text_;
};

}  // namespace

Circuit
from_qasm(const std::string& text)
{
    return QasmParser(text).parse();
}

}  // namespace tqsim::circuits
