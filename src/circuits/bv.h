#ifndef TQSIM_CIRCUITS_BV_H_
#define TQSIM_CIRCUITS_BV_H_

/**
 * @file
 * Bernstein–Vazirani circuits (the paper's worst-case benchmark: linear
 * gate growth with width and a single-bitstring ideal output, Sec. 4.2).
 */

#include <cstdint>

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Builds the width-qubit BV circuit recovering @p secret.
 *
 * Layout: data qubits 0 .. width-2, oracle ancilla width-1.  A final
 * Hadamard returns the ancilla to |1> so the ideal output is the single
 * deterministic bitstring bv_expected_outcome().
 *
 * @param width total qubits (>= 2); the secret has width-1 bits.
 * @param secret the hidden string (must fit in width-1 bits).
 */
sim::Circuit bernstein_vazirani(int width, std::uint64_t secret);

/** The suite's default secret: all ones except bit 1 (popcount w-2). */
std::uint64_t default_bv_secret(int width);

/** The deterministic ideal outcome: secret in the data bits, ancilla = 1. */
std::uint64_t bv_expected_outcome(int width, std::uint64_t secret);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_BV_H_
