#include "circuits/mul.h"

#include <stdexcept>
#include <string>

#include "circuits/adder.h"

namespace tqsim::circuits {

using sim::Circuit;

namespace {

void
maj(Circuit& c, int carry, int b, int a, bool decompose)
{
    c.cx(a, b);
    c.cx(a, carry);
    append_toffoli(c, carry, b, a, decompose);
}

void
uma(Circuit& c, int carry, int b, int a, bool decompose)
{
    append_toffoli(c, carry, b, a, decompose);
    c.cx(a, carry);
    c.cx(carry, b);
}

}  // namespace

int
multiplier_width(int ka, int kb)
{
    return 2 * ka + 3 * kb + 1;
}

Circuit
multiplier(int ka, int kb, std::uint64_t a_value, std::uint64_t b_value,
           bool decompose_ccx)
{
    if (ka < 1 || kb < 1 || multiplier_width(ka, kb) > 30) {
        throw std::invalid_argument("multiplier operand widths unsupported");
    }
    if (a_value >= (std::uint64_t{1} << ka) ||
        b_value >= (std::uint64_t{1} << kb)) {
        throw std::invalid_argument("multiplier operand value out of range");
    }
    const int width = multiplier_width(ka, kb);
    const int a0 = 0;
    const int b0 = ka;
    const int p0 = ka + kb;
    const int t0 = 2 * ka + 2 * kb;
    const int carry = 2 * ka + 3 * kb;
    Circuit c(width, "mul_n" + std::to_string(width));

    for (int i = 0; i < ka; ++i) {
        if ((a_value >> i) & 1) {
            c.x(a0 + i);
        }
    }
    for (int j = 0; j < kb; ++j) {
        if ((b_value >> j) & 1) {
            c.x(b0 + j);
        }
    }

    for (int i = 0; i < ka; ++i) {
        // t <- a_i AND b.
        for (int j = 0; j < kb; ++j) {
            append_toffoli(c, a0 + i, b0 + j, t0 + j, decompose_ccx);
        }
        // p[i..i+kb] += t via Cuccaro: addend t (kb bits) into target slice
        // p_i..p_{i+kb-1} with carry-out p_{i+kb}.
        maj(c, carry, p0 + i, t0 + 0, decompose_ccx);
        for (int j = 1; j < kb; ++j) {
            maj(c, t0 + j - 1, p0 + i + j, t0 + j, decompose_ccx);
        }
        c.cx(t0 + kb - 1, p0 + i + kb);
        for (int j = kb - 1; j >= 1; --j) {
            uma(c, t0 + j - 1, p0 + i + j, t0 + j, decompose_ccx);
        }
        uma(c, carry, p0 + i, t0 + 0, decompose_ccx);
        // Uncompute t.
        for (int j = 0; j < kb; ++j) {
            append_toffoli(c, a0 + i, b0 + j, t0 + j, decompose_ccx);
        }
    }
    return c;
}

std::uint64_t
multiplier_decode_product(std::uint64_t outcome, int ka, int kb)
{
    const int p0 = ka + kb;
    std::uint64_t product = 0;
    for (int i = 0; i < ka + kb; ++i) {
        if ((outcome >> (p0 + i)) & 1) {
            product |= std::uint64_t{1} << i;
        }
    }
    return product;
}

}  // namespace tqsim::circuits
