#ifndef TQSIM_CIRCUITS_GRAPH_H_
#define TQSIM_CIRCUITS_GRAPH_H_

/**
 * @file
 * Undirected graphs for the QAOA max-cut workloads (paper Sec. 5.7 uses
 * random, star, and 3-regular input graphs).
 */

#include <cstdint>
#include <utility>
#include <vector>

namespace tqsim::circuits {

/** A simple undirected graph on vertices 0..n-1. */
class Graph
{
  public:
    /** Creates an edgeless graph on @p num_vertices vertices. */
    explicit Graph(int num_vertices);

    /** Erdos–Renyi G(n, p) with the given @p seed. */
    static Graph random(int num_vertices, double edge_probability,
                        std::uint64_t seed);

    /** Star graph: vertex 0 connected to all others. */
    static Graph star(int num_vertices);

    /** Ring (cycle) graph. */
    static Graph ring(int num_vertices);

    /**
     * 3-regular graph via the pairing model with retries; requires
     * num_vertices even and >= 4.
     */
    static Graph regular3(int num_vertices, std::uint64_t seed);

    /** Returns the vertex count. */
    int num_vertices() const { return num_vertices_; }

    /** Returns the edge list (each pair ordered low < high, unique). */
    const std::vector<std::pair<int, int>>& edges() const { return edges_; }

    /** Returns the edge count. */
    std::size_t num_edges() const { return edges_.size(); }

    /** Adds an undirected edge; ignores duplicates and self-loops. */
    void add_edge(int u, int v);

    /** Returns true if (u, v) is an edge. */
    bool has_edge(int u, int v) const;

    /** Returns the degree of vertex @p v. */
    int degree(int v) const;

    /**
     * Cut value of the 2-coloring encoded in @p assignment bitmask: the
     * number of edges whose endpoints get different colors.  This is the
     * max-cut objective QAOA maximizes.
     */
    int cut_value(std::uint64_t assignment) const;

    /** Returns the maximum cut value over all 2^n assignments (n <= 24). */
    int max_cut_brute_force() const;

  private:
    int num_vertices_;
    std::vector<std::pair<int, int>> edges_;
};

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_GRAPH_H_
