#include "circuits/qsc.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tqsim::circuits {

using sim::Circuit;
using sim::Complex;
using sim::Matrix;

namespace {

/**
 * sqrt of a Hermitian involution P (P^2 = I):
 * sqrt(P) = (1+i)/2 * I + (1-i)/2 * P.
 */
Matrix
sqrt_of_involution(const Matrix& p)
{
    const Complex a{0.5, 0.5};
    const Complex b{0.5, -0.5};
    Matrix out(4);
    out[0] = a + b * p[0];
    out[1] = b * p[1];
    out[2] = b * p[2];
    out[3] = a + b * p[3];
    return out;
}

}  // namespace

Matrix
sqrt_x_matrix()
{
    return sqrt_of_involution({0, 1, 1, 0});
}

Matrix
sqrt_y_matrix()
{
    return sqrt_of_involution({0, Complex{0, -1}, Complex{0, 1}, 0});
}

Matrix
sqrt_w_matrix()
{
    const double s = 1.0 / std::sqrt(2.0);
    // W = (X + Y)/sqrt(2) = [[0, (1-i)/sqrt2], [(1+i)/sqrt2, 0]].
    return sqrt_of_involution(
        {0, Complex{s, -s}, Complex{s, s}, 0});
}

Circuit
qsc(int num_qubits, int cycles, std::uint64_t seed)
{
    if (num_qubits < 2) {
        throw std::invalid_argument("qsc requires >= 2 qubits");
    }
    if (cycles < 1) {
        throw std::invalid_argument("qsc requires >= 1 cycle");
    }
    Circuit c(num_qubits, "qsc_n" + std::to_string(num_qubits));
    util::Rng rng(seed);
    const Matrix mats[3] = {sqrt_x_matrix(), sqrt_y_matrix(), sqrt_w_matrix()};
    const char* names[3] = {"sqx", "sqy", "sqw"};
    std::vector<int> last_choice(num_qubits, -1);

    for (int cycle = 0; cycle < cycles; ++cycle) {
        // Single-qubit layer: random sqrt gate, never repeating on a qubit.
        for (int q = 0; q < num_qubits; ++q) {
            int pick = static_cast<int>(rng.uniform_u64(3));
            while (pick == last_choice[q]) {
                pick = static_cast<int>(rng.uniform_u64(3));
            }
            last_choice[q] = pick;
            c.append(sim::Gate::unitary1q(q, mats[pick], names[pick]));
        }
        // Entangling layer: alternating nearest-neighbour pattern.
        const int offset = cycle % 2;
        for (int q = offset; q + 1 < num_qubits; q += 2) {
            c.fsim(q, q + 1, M_PI / 2.0, M_PI / 6.0);
        }
    }
    return c;
}

}  // namespace tqsim::circuits
