#include "circuits/suite.h"

#include <stdexcept>

#include "circuits/adder.h"
#include "circuits/bv.h"
#include "circuits/graph.h"
#include "circuits/mul.h"
#include "circuits/qaoa.h"
#include "circuits/qft.h"
#include "circuits/qpe.h"
#include "circuits/qsc.h"
#include "circuits/qv.h"

namespace tqsim::circuits {

using sim::Circuit;

const std::vector<Family>&
all_families()
{
    static const std::vector<Family> kFamilies = {
        Family::kAdder, Family::kBV,  Family::kMul, Family::kQAOA,
        Family::kQFT,   Family::kQPE, Family::kQSC, Family::kQV,
    };
    return kFamilies;
}

std::string
family_name(Family family)
{
    switch (family) {
      case Family::kAdder: return "ADDER";
      case Family::kBV:    return "BV";
      case Family::kMul:   return "MUL";
      case Family::kQAOA:  return "QAOA";
      case Family::kQFT:   return "QFT";
      case Family::kQPE:   return "QPE";
      case Family::kQSC:   return "QSC";
      case Family::kQV:    return "QV";
    }
    return "?";
}

namespace {

BenchmarkCase
make_case(Family family, std::string name, Circuit circuit)
{
    circuit.set_name(name);
    return BenchmarkCase{family, std::move(name), std::move(circuit)};
}

std::vector<BenchmarkCase>
adder_suite(SuiteScale /*scale*/)
{
    // Both scales fit on a laptop; widths 4 and 10 as in the paper.
    std::vector<BenchmarkCase> out;
    const std::pair<std::uint64_t, std::uint64_t> small[3] = {
        {0, 1}, {1, 0}, {1, 1}};
    for (int v = 0; v < 3; ++v) {
        out.push_back(make_case(
            Family::kAdder, "adder_n4_" + std::to_string(v),
            adder(1, small[v].first, small[v].second, true)));
    }
    const std::pair<std::uint64_t, std::uint64_t> big[3] = {
        {3, 5}, {9, 6}, {15, 15}};
    for (int v = 0; v < 3; ++v) {
        out.push_back(make_case(
            Family::kAdder, "adder_n10_" + std::to_string(v),
            adder(4, big[v].first, big[v].second, true)));
    }
    return out;
}

std::vector<BenchmarkCase>
bv_suite(SuiteScale scale)
{
    const int paper[6] = {6, 8, 10, 12, 14, 16};
    const int reduced[6] = {6, 7, 8, 9, 10, 12};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const int w = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        out.push_back(make_case(Family::kBV, "bv_n" + std::to_string(w),
                                bernstein_vazirani(w, default_bv_secret(w))));
    }
    return out;
}

std::vector<BenchmarkCase>
mul_suite(SuiteScale scale)
{
    struct Spec { int ka, kb; std::uint64_t a, b; };
    // Paper widths: 13, 15 x4, 25.  Reduced widths: 11, 13.
    const Spec paper[6] = {{3, 2, 5, 3},  {4, 2, 9, 3},  {4, 2, 11, 2},
                           {4, 2, 7, 3},  {4, 2, 15, 1}, {6, 4, 45, 11}};
    const Spec reduced[6] = {{2, 2, 1, 3}, {2, 2, 2, 3}, {2, 2, 3, 3},
                             {3, 2, 5, 3}, {3, 2, 6, 2}, {3, 2, 7, 3}};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const Spec& s =
            (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        const int width = multiplier_width(s.ka, s.kb);
        out.push_back(make_case(
            Family::kMul,
            "mul_n" + std::to_string(width) + "_" + std::to_string(i),
            multiplier(s.ka, s.kb, s.a, s.b, false)));
    }
    return out;
}

std::vector<BenchmarkCase>
qaoa_suite(SuiteScale scale)
{
    const int paper[6] = {6, 8, 9, 11, 13, 15};
    const int reduced[6] = {6, 7, 8, 9, 10, 11};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const int n = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        const Graph g =
            Graph::random(n, 0.6, 0xCAFE0000ULL + static_cast<unsigned>(i));
        out.push_back(make_case(Family::kQAOA, "qaoa_n" + std::to_string(n),
                                qaoa_maxcut(g, {0.8}, {0.7})));
    }
    return out;
}

std::vector<BenchmarkCase>
qft_suite(SuiteScale scale)
{
    const int paper[6] = {8, 10, 12, 14, 16, 18};
    const int reduced[6] = {6, 7, 8, 9, 10, 12};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const int n = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        out.push_back(make_case(Family::kQFT, "qft_n" + std::to_string(n),
                                qft(n, true, false)));
    }
    return out;
}

std::vector<BenchmarkCase>
qpe_suite(SuiteScale scale)
{
    struct Spec { int width; double theta; };
    const Spec paper[6] = {{4, 0.125},      {6, 5.0 / 32.0}, {9, 1.0 / 3.0},
                           {9, 77.0 / 256.0}, {11, 1.0 / 3.0}, {16, 1.0 / 3.0}};
    const Spec reduced[6] = {{4, 0.125},    {6, 5.0 / 32.0}, {8, 1.0 / 3.0},
                             {9, 1.0 / 3.0}, {10, 77.0 / 512.0},
                             {11, 1.0 / 3.0}};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const Spec& s = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        out.push_back(make_case(
            Family::kQPE,
            "qpe_n" + std::to_string(s.width) + "_" + std::to_string(i),
            qpe(s.width, s.theta)));
    }
    return out;
}

std::vector<BenchmarkCase>
qsc_suite(SuiteScale scale)
{
    struct Spec { int width; int cycles; };
    const Spec paper[6] = {{8, 3}, {9, 3}, {10, 4}, {12, 5}, {15, 6}, {16, 6}};
    const Spec reduced[6] = {{6, 3}, {7, 3}, {8, 4}, {9, 4}, {10, 5}, {12, 5}};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const Spec& s = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        out.push_back(make_case(
            Family::kQSC, "qsc_n" + std::to_string(s.width),
            qsc(s.width, s.cycles, 0x5C5C0000ULL + static_cast<unsigned>(i))));
    }
    return out;
}

std::vector<BenchmarkCase>
qv_suite(SuiteScale scale)
{
    const int paper[6] = {10, 12, 14, 16, 18, 20};
    const int reduced[6] = {4, 6, 8, 10, 11, 12};
    std::vector<BenchmarkCase> out;
    for (int i = 0; i < 6; ++i) {
        const int n = (scale == SuiteScale::kPaper) ? paper[i] : reduced[i];
        out.push_back(make_case(
            Family::kQV, "qv_n" + std::to_string(n),
            quantum_volume(n, 6, 0x0F0F0000ULL + static_cast<unsigned>(i))));
    }
    return out;
}

}  // namespace

std::vector<BenchmarkCase>
family_suite(Family family, SuiteScale scale)
{
    switch (family) {
      case Family::kAdder: return adder_suite(scale);
      case Family::kBV:    return bv_suite(scale);
      case Family::kMul:   return mul_suite(scale);
      case Family::kQAOA:  return qaoa_suite(scale);
      case Family::kQFT:   return qft_suite(scale);
      case Family::kQPE:   return qpe_suite(scale);
      case Family::kQSC:   return qsc_suite(scale);
      case Family::kQV:    return qv_suite(scale);
    }
    throw std::invalid_argument("unknown family");
}

std::vector<BenchmarkCase>
benchmark_suite(SuiteScale scale)
{
    std::vector<BenchmarkCase> out;
    out.reserve(48);
    for (Family f : all_families()) {
        auto cases = family_suite(f, scale);
        for (auto& c : cases) {
            out.push_back(std::move(c));
        }
    }
    return out;
}

}  // namespace tqsim::circuits
