#include "circuits/qft.h"

#include <cmath>
#include <string>

namespace tqsim::circuits {

using sim::Circuit;

void
append_cphase(Circuit& circuit, int control, int target, double lambda,
              bool decompose)
{
    if (!decompose) {
        circuit.cphase(control, target, lambda);
        return;
    }
    // cp(lambda) = p(l/2)_c . cx . p(-l/2)_t . cx . p(l/2)_t
    circuit.phase(control, lambda / 2.0);
    circuit.cx(control, target);
    circuit.phase(target, -lambda / 2.0);
    circuit.cx(control, target);
    circuit.phase(target, lambda / 2.0);
}

Circuit
qft(int num_qubits, bool decompose_cphase, bool final_swaps)
{
    Circuit c(num_qubits, "qft_n" + std::to_string(num_qubits));
    for (int i = num_qubits - 1; i >= 0; --i) {
        c.h(i);
        for (int j = i - 1; j >= 0; --j) {
            // Rotation angle pi / 2^(i - j).
            const double lambda = M_PI / std::pow(2.0, i - j);
            append_cphase(c, j, i, lambda, decompose_cphase);
        }
    }
    if (final_swaps) {
        for (int i = 0; i < num_qubits / 2; ++i) {
            c.swap(i, num_qubits - 1 - i);
        }
    }
    return c;
}

}  // namespace tqsim::circuits
