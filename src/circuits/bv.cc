#include "circuits/bv.h"

#include <stdexcept>
#include <string>

namespace tqsim::circuits {

using sim::Circuit;

sim::Circuit
bernstein_vazirani(int width, std::uint64_t secret)
{
    if (width < 2) {
        throw std::invalid_argument("bernstein_vazirani requires width >= 2");
    }
    const int data = width - 1;
    if (data < 64 && secret >= (std::uint64_t{1} << data)) {
        throw std::invalid_argument("bv secret does not fit in width-1 bits");
    }
    const int anc = width - 1;
    Circuit c(width, "bv_n" + std::to_string(width));
    c.x(anc);
    for (int q = 0; q < width; ++q) {
        c.h(q);
    }
    for (int q = 0; q < data; ++q) {
        if ((secret >> q) & 1) {
            c.cx(q, anc);
        }
    }
    for (int q = 0; q < data; ++q) {
        c.h(q);
    }
    c.h(anc);  // returns the ancilla to |1> for a deterministic output
    return c;
}

std::uint64_t
default_bv_secret(int width)
{
    const int data = width - 1;
    std::uint64_t secret = (std::uint64_t{1} << data) - 1;
    if (data >= 2) {
        secret &= ~std::uint64_t{2};  // clear bit 1 -> popcount = width - 2
    }
    return secret;
}

std::uint64_t
bv_expected_outcome(int width, std::uint64_t secret)
{
    return secret | (std::uint64_t{1} << (width - 1));
}

}  // namespace tqsim::circuits
