#include "circuits/adder.h"

#include <stdexcept>
#include <string>

namespace tqsim::circuits {

using sim::Circuit;

void
append_toffoli(Circuit& circuit, int c0, int c1, int target, bool decompose)
{
    if (!decompose) {
        circuit.ccx(c0, c1, target);
        return;
    }
    // Standard Clifford+T decomposition (Nielsen & Chuang Fig. 4.9).
    circuit.h(target);
    circuit.cx(c1, target);
    circuit.tdg(target);
    circuit.cx(c0, target);
    circuit.t(target);
    circuit.cx(c1, target);
    circuit.tdg(target);
    circuit.cx(c0, target);
    circuit.t(c1);
    circuit.t(target);
    circuit.h(target);
    circuit.cx(c0, c1);
    circuit.t(c0);
    circuit.tdg(c1);
    circuit.cx(c0, c1);
}

int
adder_b_qubit(int i)
{
    return 1 + 2 * i;
}

int
adder_a_qubit(int i)
{
    return 2 + 2 * i;
}

int
adder_carry_qubit(int bits)
{
    return 2 * bits + 1;
}

namespace {

void
maj(Circuit& c, int carry, int b, int a, bool decompose)
{
    c.cx(a, b);
    c.cx(a, carry);
    append_toffoli(c, carry, b, a, decompose);
}

void
uma(Circuit& c, int carry, int b, int a, bool decompose)
{
    append_toffoli(c, carry, b, a, decompose);
    c.cx(a, carry);
    c.cx(carry, b);
}

}  // namespace

Circuit
adder(int bits, std::uint64_t a_value, std::uint64_t b_value,
      bool decompose_ccx)
{
    if (bits < 1 || bits > 13) {
        throw std::invalid_argument("adder supports 1..13 operand bits");
    }
    if (a_value >= (std::uint64_t{1} << bits) ||
        b_value >= (std::uint64_t{1} << bits)) {
        throw std::invalid_argument("adder operand value out of range");
    }
    const int width = 2 * bits + 2;
    Circuit c(width, "adder_n" + std::to_string(width));

    // Input preparation.
    for (int i = 0; i < bits; ++i) {
        if ((a_value >> i) & 1) {
            c.x(adder_a_qubit(i));
        }
        if ((b_value >> i) & 1) {
            c.x(adder_b_qubit(i));
        }
    }

    // MAJ chain.
    maj(c, 0, adder_b_qubit(0), adder_a_qubit(0), decompose_ccx);
    for (int i = 1; i < bits; ++i) {
        maj(c, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i),
            decompose_ccx);
    }

    // Carry out.
    c.cx(adder_a_qubit(bits - 1), adder_carry_qubit(bits));

    // UMA chain (reverse order).
    for (int i = bits - 1; i >= 1; --i) {
        uma(c, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i),
            decompose_ccx);
    }
    uma(c, 0, adder_b_qubit(0), adder_a_qubit(0), decompose_ccx);
    return c;
}

std::uint64_t
adder_decode_sum(std::uint64_t outcome, int bits)
{
    std::uint64_t sum = 0;
    for (int i = 0; i < bits; ++i) {
        if ((outcome >> adder_b_qubit(i)) & 1) {
            sum |= std::uint64_t{1} << i;
        }
    }
    if ((outcome >> adder_carry_qubit(bits)) & 1) {
        sum |= std::uint64_t{1} << bits;
    }
    return sum;
}

}  // namespace tqsim::circuits
