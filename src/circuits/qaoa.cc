#include "circuits/qaoa.h"

#include <stdexcept>
#include <string>

namespace tqsim::circuits {

using sim::Circuit;

Circuit
qaoa_maxcut(const Graph& graph, const std::vector<double>& betas,
            const std::vector<double>& gammas, bool decompose_rzz)
{
    if (betas.size() != gammas.size() || betas.empty()) {
        throw std::invalid_argument(
            "qaoa_maxcut: betas/gammas must be equal-length and non-empty");
    }
    const int n = graph.num_vertices();
    Circuit c(n, "qaoa_n" + std::to_string(n));
    for (int q = 0; q < n; ++q) {
        c.h(q);
    }
    for (std::size_t layer = 0; layer < betas.size(); ++layer) {
        const double gamma = gammas[layer];
        for (const auto& [u, v] : graph.edges()) {
            if (decompose_rzz) {
                c.cx(u, v);
                c.rz(v, gamma);
                c.cx(u, v);
            } else {
                c.rzz(u, v, gamma);
            }
        }
        const double beta = betas[layer];
        for (int q = 0; q < n; ++q) {
            c.rx(q, 2.0 * beta);
        }
    }
    return c;
}

double
expected_cut_value(const metrics::Distribution& dist, const Graph& graph)
{
    if (dist.num_qubits() != graph.num_vertices()) {
        throw std::invalid_argument(
            "expected_cut_value: distribution width != graph order");
    }
    double expectation = 0.0;
    for (std::size_t x = 0; x < dist.size(); ++x) {
        if (dist[x] > 0.0) {
            expectation += dist[x] * graph.cut_value(x);
        }
    }
    return expectation;
}

}  // namespace tqsim::circuits
