#ifndef TQSIM_CIRCUITS_ADDER_H_
#define TQSIM_CIRCUITS_ADDER_H_

/**
 * @file
 * Cuccaro ripple-carry quantum adder (the ADDER benchmark family).
 *
 * Register layout for k-bit operands (width = 2k + 2):
 *   qubit 0            carry-in ancilla (|0>)
 *   qubits 1, 3, ...   b_0 .. b_{k-1}   (receives the sum)
 *   qubits 2, 4, ...   a_0 .. a_{k-1}   (unchanged)
 *   qubit 2k + 1       carry-out
 * After the circuit, b holds (a + b) mod 2^k and carry-out holds the carry.
 */

#include <cstdint>

#include "sim/circuit.h"

namespace tqsim::circuits {

/**
 * Appends a Toffoli gate, either native (kCCX) or decomposed into the
 * standard 15-gate Clifford+T network (2 H, 7 T/Tdg, 6 CX).
 */
void append_toffoli(sim::Circuit& circuit, int c0, int c1, int target,
                    bool decompose);

/**
 * Builds the Cuccaro adder computing b <- a + b for @p bits -bit operands
 * initialized to @p a_value and @p b_value (X-gate preparation included).
 *
 * @param bits operand width k >= 1 (circuit width is 2k + 2).
 * @param a_value initial a register value (< 2^k).
 * @param b_value initial b register value (< 2^k).
 * @param decompose_ccx expand Toffolis into Clifford+T (paper-style counts).
 */
sim::Circuit adder(int bits, std::uint64_t a_value, std::uint64_t b_value,
                   bool decompose_ccx = true);

/** Qubit index of b_i in the adder layout. */
int adder_b_qubit(int i);

/** Qubit index of a_i in the adder layout. */
int adder_a_qubit(int i);

/** Qubit index of the carry-out in the adder layout for k-bit operands. */
int adder_carry_qubit(int bits);

/**
 * Decodes the measured basis state of an adder circuit into the sum
 * (including the carry bit) held in the b register + carry-out.
 */
std::uint64_t adder_decode_sum(std::uint64_t outcome, int bits);

}  // namespace tqsim::circuits

#endif  // TQSIM_CIRCUITS_ADDER_H_
