#include "core/copy_cost.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "sim/circuit.h"
#include "sim/gate_kernels.h"
#include "sim/state_vector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace tqsim::core {

namespace {

double g_host_cost = -1.0;

sim::Index g_tuned_fused_diag = 0;
int g_tuned_max_fused = 0;

/** Wall seconds per call of @p op, probed until @p min_probe_seconds of
 *  accumulated time (the profile_copy_cost scheme). */
template <typename F>
double
probe_seconds(double min_probe_seconds, F&& op)
{
    op();  // warm caches / fault pages, untimed
    util::Timer timer;
    std::uint64_t calls = 0;
    do {
        op();
        ++calls;
    } while (timer.elapsed_s() < min_probe_seconds);
    return timer.elapsed_s() / static_cast<double>(calls);
}

/** A scrambled probe state: per-amplitude work cannot be short-circuited
 *  on trivial values. */
sim::StateVector
scrambled_state(int num_qubits)
{
    sim::StateVector s(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        sim::apply_gate(s, sim::Gate::h(q));
        sim::apply_gate(s, sim::Gate::rz(q, 0.37 * (q + 1)));
    }
    return s;
}

/** Positive integer environment override, or 0 when unset/invalid. */
std::uint64_t
env_u64(const char* name)
{
    // Calibration env overrides are read at startup, before the worker pool
    // spins up.  NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* v = std::getenv(name);
    if (v == nullptr) {
        return 0;
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    return end != v && *end == '\0' ? parsed : 0;
}

/** Builds a representative gate mix (H, RZ, CX, CZ) on @p n qubits. */
sim::Circuit
probe_circuit(int n, util::Rng& rng)
{
    sim::Circuit c(n, "probe");
    for (int i = 0; i < n; ++i) {
        c.h(i);
        c.rz(i, rng.uniform() * M_PI);
    }
    for (int i = 0; i + 1 < n; ++i) {
        c.cx(i, i + 1);
    }
    for (int i = 0; i + 2 < n; i += 2) {
        c.cz(i, i + 2);
    }
    return c;
}

}  // namespace

CopyCostProfile
profile_copy_cost(int num_qubits, double min_probe_seconds)
{
    if (num_qubits < 2) {
        throw std::invalid_argument("profile_copy_cost: need >= 2 qubits");
    }
    util::Rng rng(0xBEEF);
    const sim::Circuit probe = probe_circuit(num_qubits, rng);
    sim::StateVector state(num_qubits);
    // Scramble so copies cannot hit trivially-predictable memory patterns.
    probe.apply_to(state);

    // Gate phase: run the probe circuit until the time budget is met.
    util::Timer timer;
    std::uint64_t gates = 0;
    while (timer.elapsed_s() < min_probe_seconds) {
        probe.apply_to(state);
        gates += probe.size();
    }
    const double gate_seconds = timer.elapsed_s() / static_cast<double>(gates);

    // Copy phase: repeated full-state copies.
    timer.reset();
    std::uint64_t copies = 0;
    double sink = 0.0;
    while (timer.elapsed_s() < min_probe_seconds) {
        sim::StateVector copy = state;
        sink += copy[0].real();  // defeat dead-copy elimination
        ++copies;
    }
    double copy_seconds = timer.elapsed_s() / static_cast<double>(copies);
    if (sink > 1e30) {
        copy_seconds += 0.0;  // unreachable; keeps `sink` alive
    }

    CopyCostProfile profile;
    profile.name = "this-host";
    profile.seconds_per_gate = gate_seconds;
    profile.seconds_per_copy = copy_seconds;
    return profile;
}

double
averaged_copy_cost_in_gates(const std::vector<int>& widths,
                            double min_probe_seconds)
{
    if (widths.empty()) {
        throw std::invalid_argument("averaged_copy_cost: no widths given");
    }
    std::vector<double> costs;
    costs.reserve(widths.size());
    for (int w : widths) {
        costs.push_back(profile_copy_cost(w, min_probe_seconds).cost_in_gates());
    }
    return util::mean(costs);
}

double
host_copy_cost_in_gates()
{
    if (g_host_cost < 0.0) {
        g_host_cost = averaged_copy_cost_in_gates({8, 10, 12});
        if (g_host_cost < 1.0) {
            g_host_cost = 1.0;  // a copy can never be cheaper than a gate pass
        }
    }
    return g_host_cost;
}

void
set_host_copy_cost_in_gates(double cost)
{
    if (cost <= 0.0) {
        throw std::invalid_argument("copy cost must be positive");
    }
    g_host_cost = cost;
}

sim::Index
tuned_fused_diag_threshold()
{
    if (g_tuned_fused_diag != 0) {
        return g_tuned_fused_diag;
    }
    if (const std::uint64_t env = env_u64("TQSIM_FUSED_DIAG_THRESHOLD");
        env != 0) {
        g_tuned_fused_diag = static_cast<sim::Index>(env);
        return g_tuned_fused_diag;
    }
    // Race the two apply_diag_batch modes over an 8-term batch.  Per-term
    // passes win while the state is cache-resident (T short dependency
    // chains beat one T-deep factor product); the fused single pass wins
    // once memory traffic dominates.  The crossover is the threshold.
    constexpr double kProbeSeconds = 0.002;
    sim::Index tuned = sim::Index{1} << 22;  // compiled-in default
    for (const int w : {14, 16, 18, 20}) {
        sim::StateVector state = scrambled_state(w);
        std::vector<sim::DiagTerm> terms;
        for (int t = 0; t < 8; ++t) {
            sim::DiagTerm term;
            term.mask0 = sim::Index{1} << (t % w);
            if (t % 3 == 1) {
                term.mask1 = sim::Index{1} << ((t + w / 2) % w);
            }
            term.d[1] = {std::cos(0.1 * (t + 1)), std::sin(0.1 * (t + 1))};
            term.d[3] = {std::cos(0.2 * (t + 1)), std::sin(0.2 * (t + 1))};
            terms.push_back(term);
        }
        const double per_term = probe_seconds(kProbeSeconds, [&] {
            // A threshold above the state size forces per-term passes.
            sim::apply_diag_batch(state, terms.data(), terms.size(),
                                  state.size() + 1);
        });
        const double fused = probe_seconds(kProbeSeconds, [&] {
            sim::apply_diag_batch(state, terms.data(), terms.size(), 1);
        });
        if (fused <= per_term) {
            tuned = sim::Index{1} << w;
            break;
        }
    }
    g_tuned_fused_diag = tuned;
    return g_tuned_fused_diag;
}

void
set_tuned_fused_diag_threshold(sim::Index amps)
{
    g_tuned_fused_diag = amps;
}

int
tuned_max_fused_qubits()
{
    if (g_tuned_max_fused != 0) {
        return g_tuned_max_fused;
    }
    if (const std::uint64_t env = env_u64("TQSIM_MAX_FUSED_QUBITS");
        env != 0) {
        g_tuned_max_fused =
            std::clamp(static_cast<int>(env), 1, 5);
        return g_tuned_max_fused;
    }
    // Widening the cap from k-1 to k merges two subclusters into one: the
    // run trades two (k-1)-qubit passes for one k-qubit pass (which then
    // also absorbs the connecting gates for free).  Accept each widening
    // step while the k-qubit pass costs at most two (k-1)-qubit passes.
    // Probed at a width past the L1/L2 sweet spot so the compute/bandwidth
    // balance matches real runs.
    constexpr double kProbeSeconds = 0.002;
    constexpr int kProbeWidth = 14;
    sim::StateVector state = scrambled_state(kProbeWidth);
    const int qubits[5] = {0, 3, 6, 9, 12};
    auto pass_seconds = [&](int k) {
        const std::size_t d = std::size_t{1} << k;
        sim::Matrix m(d * d, sim::Complex{0.0, 0.0});
        for (std::size_t i = 0; i < d; ++i) {
            // A dense-looking row pattern (no zero short-circuits).
            for (std::size_t j = 0; j < d; ++j) {
                m[i * d + j] = sim::Complex{i == j ? 0.9 : 0.01, 0.002};
            }
        }
        return probe_seconds(kProbeSeconds, [&] {
            sim::apply_dense_kq(state, qubits, k, m);
        });
    };
    int tuned = 2;
    double prev = pass_seconds(2);
    for (int k = 3; k <= 5; ++k) {
        const double cur = pass_seconds(k);
        if (cur > 2.0 * prev) {
            break;
        }
        tuned = k;
        prev = cur;
    }
    g_tuned_max_fused = tuned;
    return g_tuned_max_fused;
}

void
set_tuned_max_fused_qubits(int max_fused_qubits)
{
    if (max_fused_qubits < 0 || max_fused_qubits > 5) {
        throw std::invalid_argument(
            "set_tuned_max_fused_qubits: want 0 (recalibrate) or 1..5");
    }
    g_tuned_max_fused = max_fused_qubits;
}

}  // namespace tqsim::core
