#include "core/copy_cost.h"

#include <cmath>
#include <stdexcept>

#include "sim/circuit.h"
#include "sim/gate_kernels.h"
#include "sim/state_vector.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace tqsim::core {

namespace {

double g_host_cost = -1.0;

/** Builds a representative gate mix (H, RZ, CX, CZ) on @p n qubits. */
sim::Circuit
probe_circuit(int n, util::Rng& rng)
{
    sim::Circuit c(n, "probe");
    for (int i = 0; i < n; ++i) {
        c.h(i);
        c.rz(i, rng.uniform() * M_PI);
    }
    for (int i = 0; i + 1 < n; ++i) {
        c.cx(i, i + 1);
    }
    for (int i = 0; i + 2 < n; i += 2) {
        c.cz(i, i + 2);
    }
    return c;
}

}  // namespace

CopyCostProfile
profile_copy_cost(int num_qubits, double min_probe_seconds)
{
    if (num_qubits < 2) {
        throw std::invalid_argument("profile_copy_cost: need >= 2 qubits");
    }
    util::Rng rng(0xBEEF);
    const sim::Circuit probe = probe_circuit(num_qubits, rng);
    sim::StateVector state(num_qubits);
    // Scramble so copies cannot hit trivially-predictable memory patterns.
    probe.apply_to(state);

    // Gate phase: run the probe circuit until the time budget is met.
    util::Timer timer;
    std::uint64_t gates = 0;
    while (timer.elapsed_s() < min_probe_seconds) {
        probe.apply_to(state);
        gates += probe.size();
    }
    const double gate_seconds = timer.elapsed_s() / static_cast<double>(gates);

    // Copy phase: repeated full-state copies.
    timer.reset();
    std::uint64_t copies = 0;
    double sink = 0.0;
    while (timer.elapsed_s() < min_probe_seconds) {
        sim::StateVector copy = state;
        sink += copy[0].real();  // defeat dead-copy elimination
        ++copies;
    }
    double copy_seconds = timer.elapsed_s() / static_cast<double>(copies);
    if (sink > 1e30) {
        copy_seconds += 0.0;  // unreachable; keeps `sink` alive
    }

    CopyCostProfile profile;
    profile.name = "this-host";
    profile.seconds_per_gate = gate_seconds;
    profile.seconds_per_copy = copy_seconds;
    return profile;
}

double
averaged_copy_cost_in_gates(const std::vector<int>& widths,
                            double min_probe_seconds)
{
    if (widths.empty()) {
        throw std::invalid_argument("averaged_copy_cost: no widths given");
    }
    std::vector<double> costs;
    costs.reserve(widths.size());
    for (int w : widths) {
        costs.push_back(profile_copy_cost(w, min_probe_seconds).cost_in_gates());
    }
    return util::mean(costs);
}

double
host_copy_cost_in_gates()
{
    if (g_host_cost < 0.0) {
        g_host_cost = averaged_copy_cost_in_gates({8, 10, 12});
        if (g_host_cost < 1.0) {
            g_host_cost = 1.0;  // a copy can never be cheaper than a gate pass
        }
    }
    return g_host_cost;
}

void
set_host_copy_cost_in_gates(double cost)
{
    if (cost <= 0.0) {
        throw std::invalid_argument("copy cost must be positive");
    }
    g_host_cost = cost;
}

}  // namespace tqsim::core
