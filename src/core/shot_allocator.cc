#include "core/shot_allocator.h"

#include <cmath>
#include <stdexcept>

#include "util/assert.h"
#include "util/stats.h"

namespace tqsim::core {

std::uint64_t
integer_kth_root(std::uint64_t x, std::size_t k)
{
    if (k == 0) {
        throw std::invalid_argument("integer_kth_root: k must be >= 1");
    }
    if (k == 1 || x <= 1) {
        return x;
    }
    // Floating-point estimate refined by exact integer checks.
    auto pow_leq = [&](std::uint64_t r) {
        // Returns true if r^k <= x without overflow.
        std::uint64_t acc = 1;
        for (std::size_t i = 0; i < k; ++i) {
            if (r != 0 && acc > x / r) {
                return false;
            }
            acc *= r;
        }
        return acc <= x;
    };
    auto est = static_cast<std::uint64_t>(
        std::floor(std::pow(static_cast<double>(x), 1.0 / static_cast<double>(k))));
    // Correct estimate drift in both directions.
    while (est > 0 && !pow_leq(est)) {
        --est;
    }
    while (pow_leq(est + 1)) {
        ++est;
    }
    return est;
}

std::uint64_t
first_level_arity(double z, double epsilon, double first_error_rate,
                  std::uint64_t shots)
{
    return util::cochran_sample_size(z, epsilon, first_error_rate, shots);
}

std::size_t
max_remaining_levels(std::uint64_t shots, std::uint64_t a0)
{
    if (a0 == 0) {
        throw std::invalid_argument("max_remaining_levels: a0 must be >= 1");
    }
    const std::uint64_t ratio = shots / a0;
    if (ratio < 2) {
        return 0;
    }
    // A_r >= 2 with k levels iff 2^k <= ratio.
    std::size_t k = 0;
    std::uint64_t pow2 = 1;
    while (pow2 <= ratio / 2) {
        pow2 *= 2;
        ++k;
    }
    return k;
}

std::vector<std::uint64_t>
allocate_arities(std::uint64_t a0, std::size_t remaining_levels,
                 std::uint64_t shots)
{
    if (a0 < 1 || remaining_levels < 1) {
        throw std::invalid_argument(
            "allocate_arities: a0 and remaining_levels must be >= 1");
    }
    const std::uint64_t ar =
        integer_kth_root(shots / a0, remaining_levels);
    if (ar < 2) {
        throw std::invalid_argument(
            "allocate_arities: remaining arity < 2; reduce level count");
    }
    std::vector<std::uint64_t> arities(remaining_levels + 1, ar);
    arities[0] = a0;

    // Paper Sec. 3.2.4: increment shots from the first subcircuit onward to
    // guarantee the requested outcome count.  Raising A0 has the finest
    // granularity (each +1 adds prod(A_1..A_k) outcomes), so the adjustment
    // lands on the smallest product >= shots:
    std::uint64_t rest = 1;
    for (std::size_t i = 1; i < arities.size(); ++i) {
        rest *= arities[i];
    }
    const std::uint64_t needed = (shots + rest - 1) / rest;  // ceil
    arities[0] = std::max(a0, needed);
    return arities;
}

}  // namespace tqsim::core
