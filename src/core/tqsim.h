#ifndef TQSIM_CORE_TQSIM_H_
#define TQSIM_CORE_TQSIM_H_

/// @file
/// The TQSim public facade: one call that partitions a circuit, allocates
/// shots across the simulation tree, executes it with intermediate-state
/// reuse, and returns the outcome distribution plus execution statistics.
///
/// Quickstart:
/// @code
///   using namespace tqsim;
///   sim::Circuit qft = circuits::qft(10);
///   noise::NoiseModel noise = noise::NoiseModel::sycamore_depolarizing();
///   core::RunOptions opt;
///   opt.shots = 4096;
///   core::RunResult tq = core::run(qft, noise, opt);           // TQSim
///   core::RunResult base = core::run_baseline(qft, noise, opt.shots);
/// @endcode

#include "core/baseline_runner.h"
#include "core/partitioner.h"
#include "core/tree_executor.h"

namespace tqsim::core {

/// All knobs of a TQSim run (partitioning + execution).  Plain data:
/// freely copyable, safe to share read-only across threads.  The whole
/// struct is part of the determinism contract — two runs with equal
/// options (and equal circuit/noise) produce bit-identical distributions,
/// raw outcomes, and deterministic ExecStats counters at any thread,
/// shard, or service-lane count.
struct RunOptions
{
    /// Total shots N (> 0).  For PartitionStrategy::kManual the effective
    /// shot count is the product of manual_arities instead.
    std::uint64_t shots = 1024;
    /// Partitioning strategy (DCP, the paper's contribution, by default).
    PartitionStrategy strategy = PartitionStrategy::kDCP;
    /// Cochran confidence z-score (Eq. 5) for DCP's sample-size bound.
    double z = 1.96;
    /// Cochran margin of error (Eq. 5) for DCP's sample-size bound.
    double epsilon = 0.025;
    /// Copy cost in gate units charged per intermediate-state copy when
    /// partitioning; negative = profile this host once and cache
    /// (core/copy_cost.h).  Determinism note: the profiled value affects
    /// only the chosen tree shape, never the per-shot arithmetic — runs
    /// with the same resulting plan remain bit-identical.
    double copy_cost_gates = -1.0;
    /// Cap on subcircuit count (bounds intermediate-state memory: the DFS
    /// keeps one live state per tree level).
    std::size_t max_subcircuits = 64;
    /// Level count for the UCP/XCP baselines.
    std::size_t fixed_subcircuits = 3;
    /// XCP decay ratio between adjacent level arities.
    double xcp_ratio = 2.0;
    /// Per-level arities for PartitionStrategy::kManual (each > 0; the
    /// gate range is split evenly across levels).
    std::vector<std::uint64_t> manual_arities;
    /// Master seed.  Every tree node's RNG stream derives purely from
    /// (seed, level, child index) — never from consumed generator state —
    /// which is what makes runs reproducible and lets the service layer
    /// share post-prefix snapshots across requests keyed by this seed.
    std::uint64_t seed = 0x7153114D;
    /// Move-into-last-child optimization: the parent's state is donated to
    /// its final child instead of copied (saves one copy per node; results
    /// are identical either way).
    bool reuse_last_child = true;
    /// Keep the raw leaf-outcome list (traversal order) in the result.
    bool collect_outcomes = false;
    /// State representation the tree executes on (dense by default; set
    /// kind = kSharded + num_shards to run the qHiPSTER-style sliced
    /// engine with bit-identical results).  See sim::BackendConfig.
    sim::BackendConfig backend{};
    /// Online integrity checking (util/integrity.h): kOff by default —
    /// zero hot-path cost.  Checks never change outcomes of a healthy run;
    /// they only count in ExecStats and turn silent corruption into either
    /// an in-place recovery or a structured util::IntegrityError.
    util::IntegrityOptions integrity{};

    /// Converts to the partitioner's option struct.  Pure function of
    /// this struct; thread-safe.
    PartitionOptions partition_options() const;

    /// Converts to the executor's option struct (service hooks — cache,
    /// cancel, progress — default to null).  Pure function of this
    /// struct; thread-safe.
    ExecutorOptions executor_options() const;
};

/// Plans and runs TQSim on @p circuit under @p model: partitions
/// (make_partition_plan), executes the reuse tree (execute_tree), and
/// returns the distribution, optional raw outcomes, the executed plan,
/// and ExecStats.
///
/// Thread-safety: safe to call concurrently from multiple threads (the
/// shared worker pool serializes top-level parallel regions; inputs are
/// taken by const reference and not retained).  Determinism: bit-identical
/// results for equal (circuit, model, options) at any thread count —
/// only wall-clock timings, peak_live_states/peak_state_bytes, and
/// snapshot-pool/cache hit counters vary (each documented as such on
/// ExecStats).  Throws std::invalid_argument on unusable options and
/// propagates execution errors; never returns a partial result.
RunResult run(const sim::Circuit& circuit, const noise::NoiseModel& model,
              const RunOptions& options = {});

/// Convenience: the partition plan run() would execute, without executing
/// it (inspection, benches, admission control).  Pure function of its
/// arguments plus the cached host copy-cost profile; thread-safe;
/// allocates no amplitude memory.
PartitionPlan plan(const sim::Circuit& circuit,
                   const noise::NoiseModel& model,
                   const RunOptions& options = {});

}  // namespace tqsim::core

#endif  // TQSIM_CORE_TQSIM_H_
