#ifndef TQSIM_CORE_TQSIM_H_
#define TQSIM_CORE_TQSIM_H_

/**
 * @file
 * The TQSim public facade: one call that partitions a circuit, allocates
 * shots across the simulation tree, executes it with intermediate-state
 * reuse, and returns the outcome distribution plus execution statistics.
 *
 * Quickstart:
 * @code
 *   using namespace tqsim;
 *   sim::Circuit qft = circuits::qft(10);
 *   noise::NoiseModel noise = noise::NoiseModel::sycamore_depolarizing();
 *   core::RunOptions opt;
 *   opt.shots = 4096;
 *   core::RunResult tq = core::run(qft, noise, opt);           // TQSim
 *   core::RunResult base = core::run_baseline(qft, noise, opt.shots);
 * @endcode
 */

#include "core/baseline_runner.h"
#include "core/partitioner.h"
#include "core/tree_executor.h"

namespace tqsim::core {

/** All knobs of a TQSim run (partitioning + execution). */
struct RunOptions
{
    /** Total shots N. */
    std::uint64_t shots = 1024;
    /** Partitioning strategy (DCP is the paper's contribution). */
    PartitionStrategy strategy = PartitionStrategy::kDCP;
    /** Cochran confidence z-score (Eq. 5). */
    double z = 1.96;
    /** Cochran margin of error (Eq. 5). */
    double epsilon = 0.025;
    /** Copy cost in gate units; negative = profile this host. */
    double copy_cost_gates = -1.0;
    /** Cap on subcircuit count (intermediate-state memory). */
    std::size_t max_subcircuits = 64;
    /** Level count for UCP/XCP. */
    std::size_t fixed_subcircuits = 3;
    /** XCP decay ratio. */
    double xcp_ratio = 2.0;
    /** Arities for PartitionStrategy::kManual. */
    std::vector<std::uint64_t> manual_arities;
    /** Master seed. */
    std::uint64_t seed = 0x7153114D;
    /** Move-into-last-child optimization. */
    bool reuse_last_child = true;
    /** Keep raw outcome list in the result. */
    bool collect_outcomes = false;
    /** State representation the tree executes on (dense by default; set
     *  kind = kSharded + num_shards to run the qHiPSTER-style sliced
     *  engine with bit-identical results).  See sim::BackendConfig. */
    sim::BackendConfig backend{};

    /** Converts to the partitioner's option struct. */
    PartitionOptions partition_options() const;

    /** Converts to the executor's option struct. */
    ExecutorOptions executor_options() const;
};

/** Plans and runs TQSim on @p circuit under @p model. */
RunResult run(const sim::Circuit& circuit, const noise::NoiseModel& model,
              const RunOptions& options = {});

/** Convenience: plan only (inspection, benches). */
PartitionPlan plan(const sim::Circuit& circuit,
                   const noise::NoiseModel& model,
                   const RunOptions& options = {});

}  // namespace tqsim::core

#endif  // TQSIM_CORE_TQSIM_H_
