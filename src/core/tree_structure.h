#ifndef TQSIM_CORE_TREE_STRUCTURE_H_
#define TQSIM_CORE_TREE_STRUCTURE_H_

/**
 * @file
 * The simulation-tree arity vector (A0, A1, ..., Ak) of paper Sec. 3.1 and
 * its counting identities:
 *
 *  - instances of subcircuit i (0-indexed): prod_{j<=i} A_j  (Eq. 3);
 *  - total outcomes: prod_j A_j;
 *  - total nodes: 1 (initial state) + sum_i instances(i)  (Figs. 6/7).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace tqsim::core {

/** A validated arity vector describing one simulation tree. */
class TreeStructure
{
  public:
    /** Builds a tree from per-level arities (each >= 1, non-empty). */
    explicit TreeStructure(std::vector<std::uint64_t> arities);

    /** The baseline (no-reuse) tree: (shots, 1, 1, ..., 1) with
     *  @p levels total levels. */
    static TreeStructure baseline(std::uint64_t shots, std::size_t levels = 1);

    /** Number of subcircuits (tree depth below the root). */
    std::size_t num_levels() const { return arities_.size(); }

    /** Arity of level @p i. */
    std::uint64_t arity(std::size_t i) const { return arities_.at(i); }

    /** The raw arity vector. */
    const std::vector<std::uint64_t>& arities() const { return arities_; }

    /** Eq. 3: number of instances of subcircuit @p i (0-indexed). */
    std::uint64_t instances(std::size_t i) const;

    /** Total leaf outcomes prod_j A_j. */
    std::uint64_t total_outcomes() const;

    /** Total tree nodes including the initial-state root. */
    std::uint64_t total_nodes() const;

    /**
     * Theoretical speedup over the baseline tree (N, 1, ..., 1), by gate
     * work: N * sum(g_l) / sum_l instances(l) * g_l, where @p gates_per_level
     * gives each subcircuit's gate count (Sec. 3.6's accounting, ignoring
     * copy overhead).
     */
    double theoretical_speedup(
        const std::vector<std::size_t>& gates_per_level) const;

    /** Theoretical speedup when all subcircuits have equal length. */
    double theoretical_speedup_equal_lengths() const;

    /** Renders "(16,2,2)". */
    std::string to_string() const;

    bool operator==(const TreeStructure& other) const = default;

  private:
    std::vector<std::uint64_t> arities_;
};

/**
 * Closed-form maximum speedup with k equal-length subcircuits and N shots:
 * k*N / ((k-1) + N)  (paper Sec. 3.6).
 */
double max_speedup_equal_subcircuits(std::size_t k, std::uint64_t shots);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_TREE_STRUCTURE_H_
