#include "core/partitioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/copy_cost.h"
#include "core/shot_allocator.h"
#include "util/assert.h"

namespace tqsim::core {

std::string
strategy_name(PartitionStrategy strategy)
{
    switch (strategy) {
      case PartitionStrategy::kBaseline: return "Baseline";
      case PartitionStrategy::kUCP:      return "UCP";
      case PartitionStrategy::kXCP:      return "XCP";
      case PartitionStrategy::kDCP:      return "DCP";
      case PartitionStrategy::kManual:   return "Manual";
    }
    return "?";
}

std::vector<std::size_t>
PartitionPlan::gates_per_level() const
{
    std::vector<std::size_t> out;
    out.reserve(boundaries.size() - 1);
    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
        out.push_back(boundaries[i + 1] - boundaries[i]);
    }
    return out;
}

double
PartitionPlan::theoretical_speedup() const
{
    return tree.theoretical_speedup(gates_per_level());
}

std::vector<std::size_t>
equal_boundaries(std::size_t total_gates, std::size_t parts)
{
    if (parts < 1 || parts > total_gates) {
        throw std::invalid_argument("equal_boundaries: invalid part count");
    }
    std::vector<std::size_t> bounds(parts + 1, 0);
    const std::size_t base = total_gates / parts;
    const std::size_t extra = total_gates % parts;
    for (std::size_t i = 0; i < parts; ++i) {
        bounds[i + 1] = bounds[i] + base + (i < extra ? 1 : 0);
    }
    TQSIM_ASSERT(bounds.back() == total_gates);
    return bounds;
}

namespace {

PartitionPlan
baseline_plan(const sim::Circuit& circuit, std::uint64_t shots)
{
    PartitionPlan plan{TreeStructure::baseline(shots),
                       {0, circuit.size()}};
    return plan;
}

/** Increments arities round-robin until the product reaches shots. */
void
top_up(std::vector<std::uint64_t>& arities, std::uint64_t shots)
{
    auto outcomes = [&arities] {
        std::uint64_t p = 1;
        for (std::uint64_t a : arities) {
            p *= a;
        }
        return p;
    };
    std::size_t next = 0;
    int guard = 0;
    while (outcomes() < shots) {
        ++arities[next];
        next = (next + 1) % arities.size();
        TQSIM_ASSERT_MSG(++guard < 1000000, "top_up failed to converge");
    }
}

PartitionPlan
ucp_plan(const sim::Circuit& circuit, const PartitionOptions& opt,
         std::size_t max_levels)
{
    const std::size_t levels =
        std::clamp<std::size_t>(opt.fixed_subcircuits, 2, max_levels);
    std::vector<std::uint64_t> arities(
        levels, std::max<std::uint64_t>(
                    1, integer_kth_root(opt.shots, levels)));
    top_up(arities, opt.shots);
    return PartitionPlan{TreeStructure(arities),
                         equal_boundaries(circuit.size(), levels)};
}

PartitionPlan
xcp_plan(const sim::Circuit& circuit, const PartitionOptions& opt,
         std::size_t max_levels)
{
    const std::size_t levels =
        std::clamp<std::size_t>(opt.fixed_subcircuits, 2, max_levels);
    const double r = opt.xcp_ratio;
    if (r <= 1.0) {
        throw std::invalid_argument("XCP ratio must exceed 1");
    }
    // A_i = A_last * r^(levels-1-i); product = A_last^levels * r^(sum) = N.
    const double exponent_sum =
        static_cast<double>(levels) * static_cast<double>(levels - 1) / 2.0;
    const double a_last = std::pow(
        static_cast<double>(opt.shots) / std::pow(r, exponent_sum),
        1.0 / static_cast<double>(levels));
    std::vector<std::uint64_t> arities(levels);
    for (std::size_t i = 0; i < levels; ++i) {
        const double value =
            a_last * std::pow(r, static_cast<double>(levels - 1 - i));
        arities[i] = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::floor(value)));
    }
    top_up(arities, opt.shots);
    return PartitionPlan{TreeStructure(arities),
                         equal_boundaries(circuit.size(), levels)};
}

PartitionPlan
dcp_plan(const sim::Circuit& circuit, const noise::NoiseModel& model,
         const PartitionOptions& opt, double copy_cost,
         std::size_t max_levels_by_copy)
{
    // Sec. 3.2.2-3: first subcircuit = the fewest gates justified by the
    // copy overhead; its Eq. 4 error rate feeds Cochran's Eq. 5.
    const std::size_t min_len = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(copy_cost)));
    const double p_hat =
        model.aggregate_error_rate(circuit, 0, std::min(min_len,
                                                        circuit.size()));
    const std::uint64_t a0 =
        first_level_arity(opt.z, opt.epsilon, p_hat, opt.shots);

    // Sec. 3.2.4: remaining-level count k = min(shot-based, copy-based).
    const std::size_t k_shot = max_remaining_levels(opt.shots, a0);
    const std::size_t k_copy = max_levels_by_copy - 1;
    const std::size_t k = std::min(k_shot, k_copy);
    if (k < 1) {
        return baseline_plan(circuit, opt.shots);
    }
    std::vector<std::uint64_t> arities = allocate_arities(a0, k, opt.shots);
    return PartitionPlan{TreeStructure(arities),
                         equal_boundaries(circuit.size(), k + 1)};
}

}  // namespace

PartitionPlan
make_partition_plan(const sim::Circuit& circuit,
                    const noise::NoiseModel& model,
                    const PartitionOptions& options)
{
    if (circuit.empty()) {
        throw std::invalid_argument("make_partition_plan: empty circuit");
    }
    if (options.shots < 1) {
        throw std::invalid_argument("make_partition_plan: shots must be >= 1");
    }
    if (options.strategy == PartitionStrategy::kManual) {
        if (options.manual_arities.empty()) {
            throw std::invalid_argument(
                "manual strategy requires manual_arities");
        }
        const std::size_t levels = options.manual_arities.size();
        if (levels > circuit.size()) {
            throw std::invalid_argument(
                "manual strategy: more levels than gates");
        }
        return PartitionPlan{TreeStructure(options.manual_arities),
                             equal_boundaries(circuit.size(), levels)};
    }
    if (options.strategy == PartitionStrategy::kBaseline ||
        !model.has_gate_noise()) {
        return baseline_plan(circuit, options.shots);
    }

    const double copy_cost = options.copy_cost_gates >= 0.0
                                 ? options.copy_cost_gates
                                 : host_copy_cost_in_gates();
    const std::size_t min_len = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(copy_cost)));
    // Memory + copy-overhead cap on total subcircuits.
    const std::size_t max_levels = std::min<std::size_t>(
        options.max_subcircuits,
        circuit.size() / std::max<std::size_t>(1, min_len));
    if (max_levels < 2) {
        return baseline_plan(circuit, options.shots);
    }

    switch (options.strategy) {
      case PartitionStrategy::kUCP:
        return ucp_plan(circuit, options, max_levels);
      case PartitionStrategy::kXCP:
        return xcp_plan(circuit, options, max_levels);
      case PartitionStrategy::kDCP:
        return dcp_plan(circuit, model, options, copy_cost, max_levels);
      default:
        break;
    }
    return baseline_plan(circuit, options.shots);
}

}  // namespace tqsim::core
