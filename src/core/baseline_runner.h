#ifndef TQSIM_CORE_BASELINE_RUNNER_H_
#define TQSIM_CORE_BASELINE_RUNNER_H_

/**
 * @file
 * The conventional per-shot noisy Monte Carlo simulator (paper Fig. 2b):
 * every shot re-simulates the full circuit from |0...0> with fresh noise.
 * Internally this is the tree executor with the degenerate plan (N) — it
 * shares kernels, sampling, and statistics with TQSim so speedups measure
 * the reuse algorithm, not implementation differences.
 */

#include "core/tree_executor.h"

namespace tqsim::core {

/** Runs @p shots independent noisy trajectories of @p circuit. */
RunResult run_baseline(const sim::Circuit& circuit,
                       const noise::NoiseModel& model, std::uint64_t shots,
                       const ExecutorOptions& options = {});

/**
 * Runs the ideal (noise-free) simulation once and samples @p shots outcomes
 * from the final state — the reference for Fig. 1's ideal-vs-noisy gap.
 */
RunResult run_ideal_sampled(const sim::Circuit& circuit, std::uint64_t shots,
                            const ExecutorOptions& options = {});

/** Exact ideal output distribution (no sampling error). */
metrics::Distribution ideal_distribution(const sim::Circuit& circuit);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_BASELINE_RUNNER_H_
