#include "core/baseline_runner.h"

#include "sim/sampler.h"
#include "util/timer.h"

namespace tqsim::core {

RunResult
run_baseline(const sim::Circuit& circuit, const noise::NoiseModel& model,
             std::uint64_t shots, const ExecutorOptions& options)
{
    PartitionPlan plan{TreeStructure::baseline(shots), {0, circuit.size()}};
    return execute_tree(circuit, model, plan, options);
}

RunResult
run_ideal_sampled(const sim::Circuit& circuit, std::uint64_t shots,
                  const ExecutorOptions& options)
{
    util::Timer wall;
    RunResult result{metrics::Distribution(circuit.num_qubits()),
                     {},
                     PartitionPlan{TreeStructure::baseline(shots),
                                   {0, circuit.size()}},
                     {}};
    sim::StateVector state = circuit.simulate_ideal();
    util::Rng rng(options.seed);
    const std::vector<sim::Index> outcomes =
        sim::sample_many(state, shots, rng);
    for (sim::Index o : outcomes) {
        result.distribution.add_outcome(o);
    }
    if (options.collect_outcomes) {
        result.raw_outcomes = outcomes;
    }
    result.stats.gate_applications = circuit.size();
    result.stats.nodes_simulated = 1;
    result.stats.outcomes = shots;
    result.stats.peak_live_states = 1;
    result.stats.peak_state_bytes =
        sim::state_vector_bytes(circuit.num_qubits());
    result.stats.wall_seconds = wall.elapsed_s();
    if (shots > 0) {
        result.distribution.normalize();
    }
    return result;
}

metrics::Distribution
ideal_distribution(const sim::Circuit& circuit)
{
    return metrics::Distribution::from_state(circuit.simulate_ideal());
}

}  // namespace tqsim::core
