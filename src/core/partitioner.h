#ifndef TQSIM_CORE_PARTITIONER_H_
#define TQSIM_CORE_PARTITIONER_H_

/**
 * @file
 * Circuit partitioning strategies (paper Sec. 3.2):
 *
 *  - Baseline: one subcircuit, tree (N) — the conventional simulator;
 *  - UCP: uniform arity everywhere (fast but inaccurate);
 *  - XCP: exponentially decreasing arities (more accurate, limited shape);
 *  - DCP: Cochran-allocated first level + uniform remainder (the paper's
 *    contribution), bounded by the state-copy-cost minimum subcircuit
 *    length and a memory cap on subcircuit count;
 *  - Manual: caller-specified arity vector (Fig. 17 structures).
 */

#include <cstdint>
#include <vector>

#include "core/tree_structure.h"
#include "noise/noise_model.h"
#include "sim/circuit.h"

namespace tqsim::core {

/** Partitioning algorithm selector. */
enum class PartitionStrategy { kBaseline, kUCP, kXCP, kDCP, kManual };

/** Returns "DCP", "UCP", ... */
std::string strategy_name(PartitionStrategy strategy);

/** A tree structure plus the contiguous gate ranges realizing it. */
struct PartitionPlan
{
    TreeStructure tree;
    /** Subcircuit boundaries: boundaries[i]..boundaries[i+1] is level i;
     *  size == tree.num_levels() + 1; first is 0, last is circuit length. */
    std::vector<std::size_t> boundaries;

    /** Number of subcircuits (== tree.num_levels()). */
    std::size_t num_levels() const { return tree.num_levels(); }

    /** Gate count of each subcircuit. */
    std::vector<std::size_t> gates_per_level() const;

    /** Theoretical speedup of this plan vs baseline (gate work only). */
    double theoretical_speedup() const;
};

/** Inputs shared by all strategies. */
struct PartitionOptions
{
    PartitionStrategy strategy = PartitionStrategy::kDCP;
    /** Total shots N (also the minimum outcome count). */
    std::uint64_t shots = 1024;
    /** Cochran confidence z-score (DCP). */
    double z = 1.96;
    /** Cochran margin of error (DCP). */
    double epsilon = 0.025;
    /** State-copy cost in gate units; sets the minimum subcircuit length.
     *  Negative => use host_copy_cost_in_gates(). */
    double copy_cost_gates = -1.0;
    /** Memory-cap on the number of subcircuits (intermediate states). */
    std::size_t max_subcircuits = 64;
    /** Subcircuit count for UCP/XCP (total levels). */
    std::size_t fixed_subcircuits = 3;
    /** XCP ratio between consecutive level arities. */
    double xcp_ratio = 2.0;
    /** Arity vector for kManual. */
    std::vector<std::uint64_t> manual_arities;
};

/**
 * Produces the partition plan for @p circuit under @p model.
 *
 * Falls back to the baseline plan whenever reuse is impossible (no gate
 * noise, too few gates for two subcircuits, or shot budget too small).
 */
PartitionPlan make_partition_plan(const sim::Circuit& circuit,
                                  const noise::NoiseModel& model,
                                  const PartitionOptions& options);

/** Splits @p total_gates into @p parts near-equal contiguous ranges. */
std::vector<std::size_t> equal_boundaries(std::size_t total_gates,
                                          std::size_t parts);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_PARTITIONER_H_
