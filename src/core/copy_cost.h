#ifndef TQSIM_CORE_COPY_COST_H_
#define TQSIM_CORE_COPY_COST_H_

/**
 * @file
 * State-copy cost profiling (paper Sec. 3.6 / Fig. 10): measures how long
 * copying a state vector takes relative to executing one gate on the same
 * machine.  The resulting "cost in gates" sets the minimum subcircuit
 * length, which caps the number of subcircuits DCP may create.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace tqsim::core {

/** Measured (or modeled) gate/copy throughput of one execution platform. */
struct CopyCostProfile
{
    /** Platform label, e.g. "this-host" or "NVIDIA Tesla V100 HBM2". */
    std::string name;
    /** Average wall seconds to apply one gate at the profiled width. */
    double seconds_per_gate = 0.0;
    /** Average wall seconds to copy one full state vector. */
    double seconds_per_copy = 0.0;

    /** The paper's normalized metric: copy time in units of gate time. */
    double
    cost_in_gates() const
    {
        return seconds_per_copy / seconds_per_gate;
    }
};

/**
 * Measures gate and copy timings on this machine at @p num_qubits width
 * using a representative 1q/2q gate mix.
 *
 * @param num_qubits state width for the probe (>= 2).
 * @param min_probe_seconds keep timing until at least this much wall time
 *        has been accumulated for each phase (controls noise).
 */
CopyCostProfile profile_copy_cost(int num_qubits,
                                  double min_probe_seconds = 0.02);

/**
 * Averages cost_in_gates() over several widths (the paper observes the cost
 * is width-insensitive and uses one averaged value).
 */
double averaged_copy_cost_in_gates(const std::vector<int>& widths,
                                   double min_probe_seconds = 0.02);

/**
 * Returns the cached copy cost for this host, profiling it on first use
 * (widths {8, 10, 12}).  Thread-compatible, not thread-safe.
 */
double host_copy_cost_in_gates();

/** Overrides the cached host copy cost (tests, reproducibility). */
void set_host_copy_cost_in_gates(double cost);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_COPY_COST_H_
