#ifndef TQSIM_CORE_COPY_COST_H_
#define TQSIM_CORE_COPY_COST_H_

/**
 * @file
 * State-copy cost profiling (paper Sec. 3.6 / Fig. 10): measures how long
 * copying a state vector takes relative to executing one gate on the same
 * machine.  The resulting "cost in gates" sets the minimum subcircuit
 * length, which caps the number of subcircuits DCP may create.
 *
 * The same probe-until-budget machinery also calibrates the two kernel
 * switch-overs the executor needs per host (tuned_fused_diag_threshold /
 * tuned_max_fused_qubits): both trade extra arithmetic per amplitude
 * against fewer memory passes, so — like the copy cost — the right value
 * is a property of the host's compute/bandwidth balance, measured once
 * and cached.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace tqsim::core {

/** Measured (or modeled) gate/copy throughput of one execution platform. */
struct CopyCostProfile
{
    /** Platform label, e.g. "this-host" or "NVIDIA Tesla V100 HBM2". */
    std::string name;
    /** Average wall seconds to apply one gate at the profiled width. */
    double seconds_per_gate = 0.0;
    /** Average wall seconds to copy one full state vector. */
    double seconds_per_copy = 0.0;

    /** The paper's normalized metric: copy time in units of gate time. */
    double
    cost_in_gates() const
    {
        return seconds_per_copy / seconds_per_gate;
    }
};

/**
 * Measures gate and copy timings on this machine at @p num_qubits width
 * using a representative 1q/2q gate mix.
 *
 * @param num_qubits state width for the probe (>= 2).
 * @param min_probe_seconds keep timing until at least this much wall time
 *        has been accumulated for each phase (controls noise).
 */
CopyCostProfile profile_copy_cost(int num_qubits,
                                  double min_probe_seconds = 0.02);

/**
 * Averages cost_in_gates() over several widths (the paper observes the cost
 * is width-insensitive and uses one averaged value).
 */
double averaged_copy_cost_in_gates(const std::vector<int>& widths,
                                   double min_probe_seconds = 0.02);

/**
 * Returns the cached copy cost for this host, profiling it on first use
 * (widths {8, 10, 12}).  Thread-compatible, not thread-safe.
 */
double host_copy_cost_in_gates();

/** Overrides the cached host copy cost (tests, reproducibility). */
void set_host_copy_cost_in_gates(double cost);

/**
 * The state size (in amplitudes) past which apply_diag_batch should take
 * the single-pass fused kernel on this host, resolved in this order:
 *
 *  1. the cached result of a previous call (one calibration per process);
 *  2. the TQSIM_FUSED_DIAG_THRESHOLD environment variable;
 *  3. measurement: per-term specialized passes race the fused single pass
 *     over an 8-term batch at growing widths; the first width where the
 *     fused pass wins becomes the threshold (the compiled-in 2^22-amp
 *     default when none does within the probe range).
 *
 * core::make_state_backend consults this whenever
 * BackendConfig::fused_diag_threshold is 0, so every run is tuned to the
 * host unless explicitly overridden.  Always finite and >= 1.
 */
sim::Index tuned_fused_diag_threshold();

/** Overrides the cached fused-diagonal calibration; 0 clears the cache so
 *  the next call recalibrates (tests, reproducibility). */
void set_tuned_fused_diag_threshold(sim::Index amps);

/**
 * The widest fusion cluster worth forming on this host, resolved like
 * tuned_fused_diag_threshold: cache, then the TQSIM_MAX_FUSED_QUBITS
 * environment variable, then measurement — each widening step from k-1 to
 * k is accepted while one k-qubit pass still costs less than the two
 * (k-1)-qubit passes it replaces.  Calibration yields a value in [2, 5];
 * the environment variable may additionally force 1 (the legacy
 * 1q-run-only pass), so callers see [1, 5].
 */
int tuned_max_fused_qubits();

/** Overrides the cached fusion-width calibration; 0 clears the cache so
 *  the next call recalibrates (tests, reproducibility). */
void set_tuned_max_fused_qubits(int max_fused_qubits);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_COPY_COST_H_
