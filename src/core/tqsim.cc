#include "core/tqsim.h"

namespace tqsim::core {

PartitionOptions
RunOptions::partition_options() const
{
    PartitionOptions opt;
    opt.strategy = strategy;
    opt.shots = shots;
    opt.z = z;
    opt.epsilon = epsilon;
    opt.copy_cost_gates = copy_cost_gates;
    opt.max_subcircuits = max_subcircuits;
    opt.fixed_subcircuits = fixed_subcircuits;
    opt.xcp_ratio = xcp_ratio;
    opt.manual_arities = manual_arities;
    return opt;
}

ExecutorOptions
RunOptions::executor_options() const
{
    ExecutorOptions opt;
    opt.seed = seed;
    opt.reuse_last_child = reuse_last_child;
    opt.collect_outcomes = collect_outcomes;
    opt.backend = backend;
    opt.integrity = integrity;
    return opt;
}

RunResult
run(const sim::Circuit& circuit, const noise::NoiseModel& model,
    const RunOptions& options)
{
    const PartitionPlan p =
        make_partition_plan(circuit, model, options.partition_options());
    return execute_tree(circuit, model, p, options.executor_options());
}

PartitionPlan
plan(const sim::Circuit& circuit, const noise::NoiseModel& model,
     const RunOptions& options)
{
    return make_partition_plan(circuit, model, options.partition_options());
}

}  // namespace tqsim::core
