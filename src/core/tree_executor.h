#ifndef TQSIM_CORE_TREE_EXECUTOR_H_
#define TQSIM_CORE_TREE_EXECUTOR_H_

/**
 * @file
 * Depth-first execution of the simulation tree with intermediate-state reuse
 * — the heart of TQSim (paper Sec. 3.1/3.4).
 *
 * A node at level i copies its parent's intermediate state and runs
 * subcircuit i over it with freshly sampled noise; leaves contribute one
 * measured outcome each.  Depth-first traversal keeps at most
 * (levels + 1) live state vectors, and the last child of every node *moves*
 * the parent state instead of copying it (one copy saved per internal node;
 * toggleable for the ablation bench).
 *
 * When sim::num_threads() > 1 the executor dispatches the children of the
 * widest tree level across the persistent worker pool: each subtree (for the
 * baseline plan, each shot trajectory) runs on its own worker with the same
 * split RNG stream — seeded purely from (seed, level, child index) — that
 * the serial traversal would use, and partial results merge in child order.
 * The sampled distribution, raw_outcomes, and all deterministic ExecStats
 * counters are therefore bit-identical at any thread count.  Only
 * peak_live_states / peak_state_bytes (more subtrees live concurrently),
 * the snapshot-pool hit/miss split (each worker's pool warms up separately)
 * and the timing fields vary with the thread count.
 *
 * Two hot-path optimizations (both on by default, toggleable for ablation):
 *  - Segment compilation: each level's subcircuit is lowered ONCE at build
 *    time into specialized kernel ops (noise/trajectory.h's
 *    compile_segment), then re-executed at every node of the level.  Noise
 *    insertion sites and RNG draws are preserved exactly; noise-free gate
 *    runs are fused and diagonal-batched.
 *  - Snapshot pooling: branch-point state copies lease recycled amplitude
 *    buffers from a per-worker free list instead of allocating, leaving the
 *    DFS peak-memory bound intact.
 *
 * The executor is backend-agnostic: every state operation (snapshot, op
 * dispatch, channel primitives, sampling) flows through sim::StateBackend,
 * selected by ExecutorOptions::backend.  The dense backend is today's
 * StateVector engine with zero abstraction overhead on the hot path; the
 * sharded backend (dist/sharded_backend.h) runs every tree node on the
 * qHiPSTER-style sliced engine behind a pluggable dist::Transport and is
 * bit-identical to dense — distributions, raw outcomes, RNG streams, and
 * deterministic counters — at any shard and thread count.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/partitioner.h"
#include "metrics/distribution.h"
#include "noise/noise_model.h"
#include "noise/trajectory.h"
#include "sim/circuit.h"
#include "sim/plan_cache.h"
#include "sim/state_backend.h"

namespace tqsim::core {

/** Execution counters and timings for one run. */
struct ExecStats
{
    /** Ideal gate applications across all subcircuit instances. */
    std::uint64_t gate_applications = 0;
    /** Noise-channel applications. */
    std::uint64_t channel_applications = 0;
    /** Channel applications that picked a non-identity branch. */
    std::uint64_t error_events = 0;
    /** Intermediate-state copies performed. */
    std::uint64_t state_copies = 0;
    /** Bytes moved by those copies. */
    std::uint64_t bytes_copied = 0;
    /** Subcircuit instances executed (tree nodes below the root). */
    std::uint64_t nodes_simulated = 0;
    /** Leaf outcomes recorded. */
    std::uint64_t outcomes = 0;
    /** Peak number of simultaneously live state vectors.  Thread-count
     *  dependent: parallel runs keep one subtree state per busy worker. */
    std::uint64_t peak_live_states = 0;
    /** Peak state memory in bytes (live states x state size). */
    std::uint64_t peak_state_bytes = 0;
    /** Snapshot copies served from a worker's recycled buffer.  Thread-count
     *  dependent: every worker's pool warms up separately, so parallel runs
     *  see a few extra misses.  hits + misses == state_copies always. */
    std::uint64_t snapshot_pool_hits = 0;
    /** Snapshot copies that had to allocate (pool cold or disabled). */
    std::uint64_t snapshot_pool_misses = 0;
    /** Fraction of per-visit kernel dispatches removed by segment
     *  compilation (fusion + diagonal batching), weighted over levels by
     *  node count.  0 when compilation is disabled.  Deterministic: fixed
     *  at tree-build time, independent of thread count. */
    double segment_fusion_reduction = 0.0;
    /** Per-visit executions of multi-gate fused cluster ops (each is one
     *  gather/scatter pass standing in for >= 2 source gates), weighted
     *  over levels by node count like segment_fusion_reduction.
     *  Deterministic: fixed at tree-build time. */
    std::uint64_t fused_ops = 0;
    /** Source-gate applications absorbed into those fused ops. */
    std::uint64_t fused_gates_absorbed = 0;
    /** fused_ops split by cluster width ([k] = per-visit executions of
     *  k-qubit fused ops, 1 <= k <= 5; [0] unused). */
    std::uint64_t fused_width_hist[6] = {0, 0, 0, 0, 0, 0};
    /** Payload bytes exchanged between shards (sharded backends; zero for
     *  dense).  Per-run: the executor resets the backend's communication
     *  counters at run start.  Deterministic and thread-count independent
     *  — every run executes the same exchange passes. */
    std::uint64_t comm_bytes = 0;
    /** Point-to-point slice messages behind comm_bytes. */
    std::uint64_t comm_messages = 0;
    /** Operations that needed an exchange pass (genuinely global gates;
     *  compiled plans route diagonal/control-masked ops comm-free). */
    std::uint64_t global_gates = 0;
    /** Branch snapshots whose allocation failed and were degraded to an
     *  in-place recompute (trade time for memory): the child ran directly
     *  on the parent's state, and the parent was rebuilt afterwards by
     *  replaying its ancestor segments from |0...0>.  Fault-dependent
     *  (nonzero only under real allocation failure or an armed fail
     *  point); never affects outcomes — replay reproduces the exact
     *  amplitudes and RNG streams because util::Rng::split is a pure
     *  function of (seed, level, index), independent of consumption
     *  (docs/robustness.md#snapshot-degradation). */
    std::uint64_t snapshot_degradations = 0;
    /** Ancestor-segment re-simulations performed by those parent rebuilds
     *  (the time half of the time-for-memory trade).  Fault-dependent. */
    std::uint64_t replayed_segments = 0;
    /** Level-0 subcircuit executions served from an external prefix-
     *  snapshot source instead of being simulated (0 without one).
     *  Cache-state dependent — which jobs hit depends on what concurrent
     *  jobs populated first — but never affects outcomes: a lease restores
     *  the exact amplitudes, RNG stream, and trajectory counters the
     *  evicted simulation produced. */
    std::uint64_t prefix_leases = 0;
    /** Tree levels whose compiled plan came from ExecutorOptions::plan_cache
     *  instead of being compiled in-run (0 without a cache).  Cache-state
     *  dependent; never affects outcomes (cached plans are byte-identical
     *  to what compilation would produce). */
    std::uint64_t plan_cache_hits = 0;
    /** Online integrity checks performed (norm invariants at segment
     *  boundaries and prefix leases, digest verification of sampled branch
     *  snapshots — see util::IntegrityOptions).  Deterministic at a fixed
     *  check level: the check sites are tree positions, not timing
     *  (degraded snapshots skip their digest check, so the count dips only
     *  in fault runs).  0 when IntegrityLevel::kOff. */
    std::uint64_t integrity_checks = 0;
    /** Checks that failed.  Fault-dependent (nonzero only under real or
     *  injected corruption).  A snapshot-digest failure on the serial path
     *  is *recovered* — the corrupt copy is discarded and the child
     *  degrades to the in-place recompute path, counted here and in
     *  snapshot_degradations, with outcomes unaffected; any other failure
     *  aborts the run with util::IntegrityError (the service retries it
     *  cache-cold as RejectReason::kIntegrityFailure). */
    std::uint64_t integrity_failures = 0;
    /** Total wall-clock seconds. */
    double wall_seconds = 0.0;
    /** Seconds spent copying states. */
    double copy_seconds = 0.0;
};

/** The outcome of a simulation run. */
struct RunResult
{
    /** Normalized outcome frequencies. */
    metrics::Distribution distribution;
    /** Raw leaf outcomes in traversal order (empty unless requested). */
    std::vector<sim::Index> raw_outcomes;
    /** The plan that was executed. */
    PartitionPlan plan;
    /** Counters and timings. */
    ExecStats stats;
};

/** Thrown out of execute_tree when ExecutorOptions::cancel flips to true
 *  mid-run (cooperative cancellation — checked once per tree node, so a
 *  cancel lands within one segment simulation). */
class RunCancelled : public std::runtime_error
{
  public:
    RunCancelled() : std::runtime_error("execute_tree: run cancelled") {}
};

/**
 * Thrown out of execute_tree when state allocation fails mid-run and the
 * in-place degradation path cannot absorb it (e.g. a snapshot of a state
 * shared across parallel workers, or the root allocation itself).  The
 * unwind is clean — arena buffers are released, live-state counters
 * rebalance, nothing leaks — so the caller can retry, shrink the run, or
 * shed load (the service layer treats this as transient and walks its
 * degradation ladder; see docs/robustness.md#degradation-ladder).
 */
class ResourceExhausted : public std::runtime_error
{
  public:
    ResourceExhausted()
        : std::runtime_error(
              "execute_tree: resource exhausted (state allocation failed)")
    {
    }
};

/**
 * The prefix-snapshot seam: lets a caller share post-level-0 intermediate
 * states across runs — the cross-request half of the service layer's reuse
 * cache (service/reuse_cache.h).  Like sim::PlanCache the seam is
 * deliberately dumb: the executor identifies a snapshot only by its level-0
 * child index; all cross-run keying (circuit/noise digests, seed, execution
 * configuration) lives in the adapter, which must guarantee that a leased
 * snapshot is bit-identical — amplitudes, post-segment RNG stream, and
 * trajectory counters — to what simulating the segment in this run would
 * produce.  Level 0 only: deeper nodes' RNG streams split off their level-0
 * ancestor's, so the first-segment snapshot is exactly the shared prefix of
 * every run with the same (circuit segment, noise, seed) triple.
 *
 * Thread-safety: lease/offer are called from traversal workers concurrently
 * (distinct children, possibly several runs at once); implementations must
 * synchronize internally.
 */
class PrefixSnapshotSource
{
  public:
    virtual ~PrefixSnapshotSource() = default;

    /**
     * Tries to serve the post-segment-0 snapshot of level-0 child @p child.
     * On a hit: overwrites @p state (via backend.import_amplitudes) with the
     * cached amplitudes, @p rng with the cached post-segment stream, adds
     * the cached trajectory counters into @p stats, and returns true.  On a
     * miss returns false leaving all three untouched.
     */
    virtual bool lease(sim::StateBackend& backend, std::uint64_t child,
                       sim::BackendState& state, util::Rng* rng,
                       noise::TrajectoryStats* stats) = 0;

    /**
     * Offers the snapshot this run just computed for child @p child —
     * @p state / @p rng / @p stats exactly as they stand after the level-0
     * segment simulation.  The cache may decline (capacity); re-offering an
     * already-cached child is a no-op.
     */
    virtual void offer(sim::StateBackend& backend, std::uint64_t child,
                       const sim::BackendState& state, const util::Rng& rng,
                       const noise::TrajectoryStats& stats) = 0;
};

/** Executor knobs. */
struct ExecutorOptions
{
    /** Master RNG seed; every tree node derives its stream from it. */
    std::uint64_t seed = 0x7153114D;  // "TQSIM"
    /** Move the parent state into the last child instead of copying. */
    bool reuse_last_child = true;
    /** Record raw outcomes (metrics benches need them; costs 8 B each). */
    bool collect_outcomes = false;
    /** Compile each level's segment once (fusion + specialized kernels)
     *  instead of interpreting gates per node visit.  Off = the legacy
     *  gate-at-a-time path (equivalence tests, ablation). */
    bool compile_segments = true;
    /** Serve snapshot copies from per-worker recycled buffers.  Off = every
     *  branch allocates a fresh state (legacy behavior, ablation). */
    bool use_snapshot_pool = true;
    /** Which state representation executes the tree (dense by default;
     *  kSharded runs every node on the qHiPSTER-style sliced engine with
     *  bit-identical results).  See sim::BackendConfig. */
    sim::BackendConfig backend{};
    /** Optional compiled-plan cache (not owned; null = compile every level
     *  in-run).  Consulted once per level at build time; see
     *  sim::PlanCache for the byte-identity contract.  Ignored when
     *  compile_segments is off. */
    sim::PlanCache* plan_cache = nullptr;
    /** Optional cross-run prefix-snapshot source (not owned; null = no
     *  sharing).  Consulted at every level-0 child; see PrefixSnapshotSource
     *  for the bit-identity contract.  Ignored when compile_segments is off
     *  (the legacy path re-slices circuits and is not cache-keyed). */
    PrefixSnapshotSource* prefix_source = nullptr;
    /** Online integrity checking (util/integrity.h).  kOff (the default)
     *  costs nothing on the hot path; kBoundaries verifies norm
     *  conservation after every segment simulation and prefix lease;
     *  kSampled additionally digest-verifies every sample_every-th branch
     *  snapshot copy.  Violations either degrade in place (serial snapshot
     *  copies — outcomes unaffected) or abort the run with
     *  util::IntegrityError; counts land in ExecStats::integrity_checks /
     *  integrity_failures. */
    util::IntegrityOptions integrity{};
    /** Optional cooperative cancel flag (not owned).  Checked once per tree
     *  node; when it reads true the run throws RunCancelled.  Null = the
     *  run is uncancellable. */
    const std::atomic<bool>* cancel = nullptr;
    /** Optional live progress counter (not owned).  Incremented once per
     *  recorded leaf outcome, so a poller can read shots-completed while
     *  the run executes.  Null = no streaming. */
    std::atomic<std::uint64_t>* progress_outcomes = nullptr;
};

/**
 * Resolves a BackendConfig to a concrete backend for an
 * @p num_qubits-qubit circuit — the one place implementation types are
 * named, so callers (and execute_tree itself) stay config-driven.
 */
std::unique_ptr<sim::StateBackend> make_state_backend(
    const sim::BackendConfig& config, int num_qubits);

/**
 * The fusion-width cap a run with BackendConfig::max_fused_qubits ==
 * @p configured actually compiles with: explicit caps clamp to the kernel
 * limit (5), 0 resolves to the per-host calibration
 * (core::tuned_max_fused_qubits).  Exposed so cache keys over execution
 * configuration (service/reuse_cache.h) can use the *resolved* value —
 * fusion shapes amplitudes at the 1e-12 reassociation scale, so two
 * configs are share-compatible exactly when they resolve equal.
 */
int resolved_max_fused_qubits(int configured);

/**
 * The fused-diagonal threshold a run with
 * BackendConfig::fused_diag_threshold == @p configured actually executes
 * with: nonzero passes through, 0 resolves to the per-host calibration
 * (core::tuned_fused_diag_threshold).  Same cache-key rationale as
 * resolved_max_fused_qubits.
 */
std::uint64_t resolved_fused_diag_threshold(std::uint64_t configured);

/**
 * Runs @p circuit under @p model according to @p plan.
 *
 * The baseline simulator is exactly this executor with the degenerate plan
 * (N, 1, ..., 1) — see baseline_runner.h for the convenience wrapper.
 */
RunResult execute_tree(const sim::Circuit& circuit,
                       const noise::NoiseModel& model,
                       const PartitionPlan& plan,
                       const ExecutorOptions& options = {});

/**
 * execute_tree on a caller-provided backend (custom transport, reused
 * instance, future GPU/MPI backends).  @p backend must match the circuit
 * width; its communication counters are reset at run start and reported in
 * the result's ExecStats.
 */
RunResult execute_tree(const sim::Circuit& circuit,
                       const noise::NoiseModel& model,
                       const PartitionPlan& plan,
                       const ExecutorOptions& options,
                       sim::StateBackend& backend);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_TREE_EXECUTOR_H_
