#include "core/tree_executor.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/copy_cost.h"
#include "dist/sharded_backend.h"
#include "sim/parallel.h"
#include "sim/sampler.h"
#include "sim/segment_plan.h"
#include "util/assert.h"
#include "util/integrity.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace tqsim::core {

namespace {

using noise::NoiseModel;
using noise::TrajectoryStats;
using sim::BackendState;
using sim::Circuit;
using sim::StateBackend;

using StatePtr = std::unique_ptr<BackendState>;

/** Read-only inputs plus cross-thread accounting for one execute_tree call. */
struct RunShared
{
    const Circuit& circuit;
    const NoiseModel& model;
    const PartitionPlan& plan;
    const ExecutorOptions& options;
    /** The state representation every tree node runs on. */
    StateBackend& backend;
    const std::uint64_t state_bytes;
    /** The level whose children are dispatched across the worker pool. */
    const std::size_t dispatch_level;
    /** One backend-lowered plan per level (empty when compilation is off).
     *  Compiled + prepared once at tree-build time, executed at every
     *  node. */
    const std::vector<std::unique_ptr<sim::PreparedSegment>>& segments;
    /** Leaf outcomes stream here when raw outcomes are not requested, so
     *  shot-heavy runs never buffer per-leaf storage.  Guarded by
     *  distribution_mutex; the +1.0 adds are exact integer arithmetic, so
     *  the result is identical in any accumulation order.  The lock is
     *  taken once per leaf — after a full segment simulation — so
     *  contention is noise, whereas per-worker dense histograms would cost
     *  2^n doubles per live subtree. */
    metrics::Distribution& distribution;
    /** Lock-order rank "executor-leaf": a leaf lock — record_leaf takes it
     *  for one add_outcome and releases; nothing is acquired under it.
     *  GUARDED_BY cannot bind a reference member's pointee, so the
     *  distribution contract stays in the comment above. */
    util::Mutex distribution_mutex{};
    /** Live intermediate states across all workers (thread-count dependent). */
    std::atomic<std::uint64_t> live_states{0};
    std::atomic<std::uint64_t> peak_live_states{0};
};

/** Returns the level with the largest arity (first on ties): dispatching
 *  there yields the most independent subtree/shot tasks per fork-join. */
std::size_t
widest_level(const PartitionPlan& plan)
{
    std::size_t best = 0;
    for (std::size_t l = 1; l < plan.num_levels(); ++l) {
        if (plan.tree.arity(l) > plan.tree.arity(best)) {
            best = l;
        }
    }
    return best;
}

/**
 * One traversal worker: a DFS cursor plus its private accumulators and
 * state arena.
 *
 * The serial executor is a single TreeWorker walking the whole tree.  In
 * parallel runs, the children of the widest level each get their own
 * TreeWorker; the partial results are merged in child order afterwards, so
 * outcomes and counters are identical to the serial traversal no matter how
 * many threads executed it.
 */
class TreeWorker
{
  public:
    explicit TreeWorker(RunShared& shared)
        : s_(&shared),
          arena_(shared.backend.make_arena(shared.options.use_snapshot_pool))
    {
    }

    /**
     * Expands the node owning @p state at @p level.  @p state may be
     * consumed (the pointer moved into the last child) when
     * reuse_last_child is on.
     */
    void
    descend(std::size_t level, StatePtr& state, util::Rng& node_rng)
    {
        if (level == s_->plan.num_levels()) {
            record_leaf(*state, node_rng);
            return;
        }
        const std::uint64_t arity = s_->plan.tree.arity(level);
        if (level == s_->dispatch_level && arity >= 2 &&
            sim::num_threads() > 1 && !sim::in_parallel_region()) {
            parallel_children(level, state, node_rng);
            return;
        }
        serial_children(level, state, node_rng);
    }

    void
    note_state_alive()
    {
        const std::uint64_t live =
            1 + s_->live_states.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t peak =
            s_->peak_live_states.load(std::memory_order_relaxed);
        while (live > peak &&
               !s_->peak_live_states.compare_exchange_weak(
                   peak, live, std::memory_order_relaxed)) {
        }
    }

    void
    note_state_dead()
    {
        s_->live_states.fetch_sub(1, std::memory_order_relaxed);
    }

    /** This worker's state allocator (root creation runs through it). */
    sim::StateArena& arena() { return *arena_; }

    /** Deterministic counters accumulated by this worker. */
    ExecStats stats_;
    /** Leaf outcomes in traversal order. */
    std::vector<sim::Index> outcomes_;
    /** Time this worker spent copying intermediate states. */
    util::AccumulatingTimer copy_timer_;

  private:
    Circuit
    plan_segment(std::size_t level) const
    {
        return s_->circuit.slice(s_->plan.boundaries[level],
                                 s_->plan.boundaries[level + 1]);
    }

    /** Takes the branch-point snapshot of @p state — through this worker's
     *  arena, which recycles released buffers unless pooling is off — and
     *  accounts for it. */
    StatePtr
    snapshot(const BackendState& state)
    {
        copy_timer_.start();
        bool from_pool = false;
        StatePtr work = arena_->snapshot(state, &from_pool);
        copy_timer_.stop();
        if (from_pool) {
            ++stats_.snapshot_pool_hits;
        } else {
            ++stats_.snapshot_pool_misses;
        }
        note_state_alive();
        ++stats_.state_copies;
        stats_.bytes_copied += s_->state_bytes;
        return work;
    }

    /** Ends a snapshot's life, recycling its buffers into the arena.  A
     *  null @p work (its state traveled into a reuse child) is dropped
     *  harmlessly. */
    void
    recycle(StatePtr work)
    {
        note_state_dead();
        arena_->recycle(std::move(work));
    }

    /**
     * kSampled branch-snapshot verification: digests @p copy against
     * @p parent (bit-equal digests across backends — see
     * StateBackend::state_digest).  Returns true when the copy is intact or
     * the check is not due for this @p child.  A false return (counted in
     * integrity_failures) means the copied amplitudes differ from the
     * source — the silent-corruption window the arena lease covers.
     */
    bool
    snapshot_verified(const BackendState& parent, const BackendState& copy,
                      std::uint64_t child)
    {
        const util::IntegrityOptions& opts = s_->options.integrity;
        if (opts.level != util::IntegrityLevel::kSampled) {
            return true;
        }
        const std::uint64_t every =
            opts.sample_every == 0 ? 1 : opts.sample_every;
        if (child % every != 0) {
            return true;
        }
        ++stats_.integrity_checks;
        if (s_->backend.state_digest(copy) ==
            s_->backend.state_digest(parent)) {
            return true;
        }
        ++stats_.integrity_failures;
        return false;
    }

    /**
     * kBoundaries+ invariant monitor: after every segment simulation and
     * prefix lease the state must still be normalized (trajectory execution
     * renormalizes after each channel branch).  A violation means amplitude
     * data was corrupted in a way no retry of *this* state can fix, so the
     * run aborts with util::IntegrityError and the service retries
     * cache-cold.
     */
    void
    check_norm(const BackendState& state)
    {
        const util::IntegrityOptions& opts = s_->options.integrity;
        if (!util::integrity_enabled(opts)) {
            return;
        }
        ++stats_.integrity_checks;
        const double norm = s_->backend.norm_squared(state);
        if (!util::integrity::norm_conserved(norm, opts.norm_tolerance)) {
            ++stats_.integrity_failures;
            throw util::IntegrityError(
                "norm not conserved at segment boundary");
        }
    }

    void
    serial_children(std::size_t level, StatePtr& state, util::Rng& node_rng)
    {
        const std::uint64_t arity = s_->plan.tree.arity(level);
        std::optional<Circuit> legacy;
        if (!s_->options.compile_segments) {
            legacy.emplace(plan_segment(level));
        }
        const Circuit* legacy_segment = legacy ? &*legacy : nullptr;
        if (path_.size() <= level) {
            path_.resize(level + 1);
        }
        for (std::uint64_t child = 0; child < arity; ++child) {
            path_[level] = child;
            util::Rng child_rng = node_rng.split(level, child);
            const bool reuse =
                s_->options.reuse_last_child && (child + 1 == arity);
            if (reuse) {
                simulate_segment(level, child, legacy_segment, *state,
                                 child_rng);
                descend(level + 1, state, child_rng);
                continue;
            }
            StatePtr work;
            try {
                work = snapshot(*state);
                // Recovered in place: the child runs on the parent's state
                // and the parent is rebuilt by replay — no error escapes
                // (docs/robustness.md).  tqsim-lint: allow(catch)
            } catch (const std::bad_alloc&) {
                degraded_child(level, child, legacy_segment, state,
                               child_rng, child + 1 < arity);
                continue;
            }
            if (!snapshot_verified(*state, *work, child)) {
                // The copy is corrupt but the parent is intact: discard the
                // copy (a future lease overwrites the buffer fully) and run
                // the child through the same in-place degradation path an
                // allocation failure takes — outcomes stay bit-identical.
                recycle(std::move(work));
                degraded_child(level, child, legacy_segment, state,
                               child_rng, child + 1 < arity);
                continue;
            }
            simulate_segment(level, child, legacy_segment, *work, child_rng);
            descend(level + 1, work, child_rng);
            recycle(std::move(work));
        }
    }

    /**
     * The snapshot-degradation path: allocation for @p child's branch copy
     * failed, so trade time for memory — simulate the child directly on
     * the parent's state, and when further siblings still need the parent,
     * rebuild it by resetting to |0...0> and replaying the ancestor
     * segments recorded in path_.  Bit-identical to the snapshot path:
     * every RNG stream is a pure function of (seed, level, child) via
     * util::Rng::split, never of consumed generator state, so the replay
     * reproduces the exact amplitudes the snapshot preserved.
     */
    void
    degraded_child(std::size_t level, std::uint64_t child,
                   const Circuit* legacy_segment, StatePtr& state,
                   util::Rng& child_rng, bool parent_needed_again)
    {
        ++stats_.snapshot_degradations;
        simulate_segment(level, child, legacy_segment, *state, child_rng);
        descend(level + 1, state, child_rng);
        if (!parent_needed_again) {
            return;
        }
        if (state == nullptr) {
            // A deeper parallel dispatch moved the state into its last
            // child; start the rebuild from a fresh register.  (If even
            // this allocation fails, the run surfaces ResourceExhausted —
            // the live-state slot is still accounted to our caller, so no
            // counter is touched here.)
            state = arena_->make_root();
        } else {
            s_->backend.reset_state(*state);
        }
        replay_path(level, *state);
    }

    /** Rebuilds the post-segment state of the ancestor path path_[0..level)
     *  onto @p state (assumed |0...0>): re-simulates each ancestor segment
     *  with the same split-derived RNG stream the original traversal used.
     *  Trajectory counters are discarded — the original pass already
     *  counted them — which keeps deterministic ExecStats identical to a
     *  fault-free run. */
    void
    replay_path(std::size_t level, BackendState& state)
    {
        util::Rng rng(s_->options.seed);
        std::optional<Circuit> legacy;
        for (std::size_t l = 0; l < level; ++l) {
            if (s_->options.cancel != nullptr &&
                s_->options.cancel->load(std::memory_order_relaxed)) {
                throw RunCancelled();
            }
            // Consumption during simulation never feeds the next split:
            // split(l, c) is a pure function of the generator's seed.
            rng = rng.split(l, path_[l]);
            TrajectoryStats discard;
            if (s_->options.compile_segments) {
                noise::run_compiled_trajectory(s_->backend, state,
                                               *s_->segments[l], s_->model,
                                               rng, &discard);
            } else {
                legacy.emplace(plan_segment(l));
                noise::run_trajectory(s_->backend, state, *legacy, s_->model,
                                      rng, &discard);
            }
            ++stats_.replayed_segments;
        }
    }

    /**
     * Dispatches this node's children across the worker pool.  Each child
     * runs in its own TreeWorker whose RNG stream is the same
     * node_rng.split(level, child) the serial loop would use, so the merged
     * result is bit-identical at any thread count.  The last child preserves
     * the serial move-instead-of-copy reuse: it waits (briefly — siblings
     * are claimed in ascending order before it) until every sibling has
     * copied the parent state, then steals it.
     */
    void
    parallel_children(std::size_t level, StatePtr& state, util::Rng& node_rng)
    {
        const std::uint64_t arity = s_->plan.tree.arity(level);
        std::optional<Circuit> legacy;
        if (!s_->options.compile_segments) {
            legacy.emplace(plan_segment(level));
        }
        const Circuit* legacy_segment = legacy ? &*legacy : nullptr;
        std::vector<TreeWorker> parts;
        parts.reserve(arity);
        for (std::uint64_t c = 0; c < arity; ++c) {
            parts.emplace_back(*s_);
        }
        const bool reuse = s_->options.reuse_last_child;
        const std::uint64_t last = arity - 1;
        std::atomic<std::uint64_t> copies_done{0};
        std::atomic<bool> failed{false};
        sim::parallel_for_each(arity, [&](std::uint64_t child) {
            TreeWorker& part = parts[child];
            try {
                // Seed the part's ancestor path so a deeper snapshot
                // degradation inside it can replay from the root.
                part.path_ = path_;
                if (part.path_.size() <= level) {
                    part.path_.resize(level + 1);
                }
                part.path_[level] = child;
                util::Rng child_rng = node_rng.split(level, child);
                if (reuse && child == last) {
                    while (copies_done.load(std::memory_order_acquire) <
                           last) {
                        if (failed.load(std::memory_order_relaxed)) {
                            // A sibling threw; bail out quietly so its
                            // exception (the root cause) is the one the
                            // pool rethrows to the caller.
                            return;
                        }
                        std::this_thread::yield();
                    }
                    StatePtr work = std::move(state);
                    part.simulate_segment(level, child, legacy_segment, *work,
                                          child_rng);
                    part.descend(level + 1, work, child_rng);
                } else {
                    StatePtr work = part.snapshot(*state);
                    copies_done.fetch_add(1, std::memory_order_release);
                    if (!part.snapshot_verified(*state, *work, child)) {
                        // The parent is shared across workers here, so the
                        // serial in-place recovery is unavailable: abort
                        // the run (the service retries it cache-cold).
                        throw util::IntegrityError(
                            "branch snapshot digest mismatch");
                    }
                    part.simulate_segment(level, child, legacy_segment, *work,
                                          child_rng);
                    part.descend(level + 1, work, child_rng);
                    part.recycle(std::move(work));
                }
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                throw;
            }
        });
        for (TreeWorker& part : parts) {
            merge_child(part);
        }
    }

    void
    simulate_segment(std::size_t level, std::uint64_t child,
                     const Circuit* legacy_segment, BackendState& state,
                     util::Rng& rng)
    {
        // Cooperative cancellation: one check per tree node keeps the cost
        // off the per-amplitude path while bounding cancel latency to one
        // segment simulation.
        if (s_->options.cancel != nullptr &&
            s_->options.cancel->load(std::memory_order_relaxed)) {
            throw RunCancelled();
        }
        TrajectoryStats traj;
        if (legacy_segment == nullptr) {
            // The cross-request prefix seam applies to level 0 only: the
            // post-segment-0 snapshot (amplitudes + RNG stream + counters)
            // is the exact shared prefix of every run with the same
            // (segment, noise, seed) key — see PrefixSnapshotSource.
            PrefixSnapshotSource* prefix =
                level == 0 ? s_->options.prefix_source : nullptr;
            if (prefix != nullptr &&
                prefix->lease(s_->backend, child, state, &rng, &traj)) {
                ++stats_.prefix_leases;
            } else {
                noise::run_compiled_trajectory(s_->backend, state,
                                               *s_->segments[level],
                                               s_->model, rng, &traj);
                if (prefix != nullptr) {
                    prefix->offer(s_->backend, child, state, rng, traj);
                }
            }
        } else {
            noise::run_trajectory(s_->backend, state, *legacy_segment,
                                  s_->model, rng, &traj);
        }
        stats_.gate_applications += traj.gates;
        stats_.channel_applications += traj.channel_applications;
        stats_.error_events += traj.error_events;
        ++stats_.nodes_simulated;
        check_norm(state);
    }

    void
    record_leaf(const BackendState& state, util::Rng& rng)
    {
        sim::Index outcome = s_->backend.sample_once(state, rng);
        outcome = noise::apply_readout_error(
            outcome, s_->circuit.num_qubits(),
            s_->model.readout_flip_probability(), rng);
        if (s_->options.collect_outcomes) {
            outcomes_.push_back(outcome);
        } else {
            util::MutexLock lock(s_->distribution_mutex);
            s_->distribution.add_outcome(outcome);
        }
        ++stats_.outcomes;
        if (s_->options.progress_outcomes != nullptr) {
            s_->options.progress_outcomes->fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    /** Folds a child's partial result into this worker, in child order. */
    void
    merge_child(TreeWorker& part)
    {
        stats_.gate_applications += part.stats_.gate_applications;
        stats_.channel_applications += part.stats_.channel_applications;
        stats_.error_events += part.stats_.error_events;
        stats_.state_copies += part.stats_.state_copies;
        stats_.bytes_copied += part.stats_.bytes_copied;
        stats_.nodes_simulated += part.stats_.nodes_simulated;
        stats_.outcomes += part.stats_.outcomes;
        stats_.snapshot_pool_hits += part.stats_.snapshot_pool_hits;
        stats_.snapshot_pool_misses += part.stats_.snapshot_pool_misses;
        stats_.snapshot_degradations += part.stats_.snapshot_degradations;
        stats_.replayed_segments += part.stats_.replayed_segments;
        stats_.prefix_leases += part.stats_.prefix_leases;
        stats_.integrity_checks += part.stats_.integrity_checks;
        stats_.integrity_failures += part.stats_.integrity_failures;
        outcomes_.insert(outcomes_.end(), part.outcomes_.begin(),
                         part.outcomes_.end());
        copy_timer_.merge(part.copy_timer_);
    }

    RunShared* s_;
    /** Per-worker state allocator (private snapshot free list). */
    std::unique_ptr<sim::StateArena> arena_;
    /** Child index taken at each ancestor level of the node currently
     *  being expanded — the replay coordinates for snapshot degradation
     *  (path_[l] is meaningful for l <= the current level). */
    std::vector<std::uint64_t> path_;
};

}  // namespace

int
resolved_max_fused_qubits(int configured)
{
    if (configured > 0) {
        return std::min(configured, 5);
    }
    return tuned_max_fused_qubits();
}

std::uint64_t
resolved_fused_diag_threshold(std::uint64_t configured)
{
    if (configured != 0) {
        return configured;
    }
    return static_cast<std::uint64_t>(tuned_fused_diag_threshold());
}

std::unique_ptr<StateBackend>
make_state_backend(const sim::BackendConfig& config, int num_qubits)
{
    // 0 = auto-tune: every run gets a concrete, host-calibrated threshold
    // (cached after the first calibration), so backends never fall back to
    // the compiled-in default unless the calibration chose it.
    const sim::Index fused_diag = static_cast<sim::Index>(
        resolved_fused_diag_threshold(config.fused_diag_threshold));
    switch (config.kind) {
      case sim::BackendKind::kDense:
        return std::make_unique<sim::DenseStateBackend>(num_qubits,
                                                        fused_diag);
      case sim::BackendKind::kSharded:
        return std::make_unique<dist::ShardedStateBackend>(
            num_qubits, config.num_shards, nullptr, fused_diag);
    }
    throw std::invalid_argument("make_state_backend: unknown backend kind");
}

RunResult
execute_tree(const Circuit& circuit, const NoiseModel& model,
             const PartitionPlan& plan, const ExecutorOptions& options,
             StateBackend& backend)
{
    if (plan.boundaries.size() != plan.tree.num_levels() + 1 ||
        plan.boundaries.front() != 0 ||
        plan.boundaries.back() != circuit.size()) {
        throw std::invalid_argument(
            "execute_tree: plan boundaries do not cover the circuit");
    }
    if (backend.num_qubits() != circuit.num_qubits()) {
        throw std::invalid_argument(
            "execute_tree: backend width does not match the circuit");
    }
    RunResult result{metrics::Distribution(circuit.num_qubits()),
                     {},
                     plan,
                     {}};
    // Resolve the fusion width before the wall timer: the first resolution
    // in a process may run the one-time host calibration, which is setup
    // cost, not run cost.
    sim::FusionOptions fusion;
    if (options.compile_segments) {
        fusion.max_fused_qubits =
            resolved_max_fused_qubits(options.backend.max_fused_qubits);
    }
    util::Timer wall;
    // Communication counters are namespaced per run.
    backend.reset_comm_stats();
    // Arm backend-internal verification (e.g. the sharded transport's
    // exchange digests) from this run's check level.
    backend.set_integrity(options.integrity);
    // Segment compilation happens once per level, up front; the backend
    // lowers each compiled plan once (routing, remapping), and every node
    // of a level then re-executes the prepared plan.  With a plan cache,
    // levels another run already compiled are served from it — a cached
    // plan is byte-identical to what compile_segment would produce (pure
    // function of circuit range + noise + fusion, all covered by the
    // adapter's key), so outcomes cannot depend on cache state.
    std::vector<std::shared_ptr<const sim::CompiledSegment>> compiled;
    std::vector<std::unique_ptr<sim::PreparedSegment>> segments;
    double dispatches_before = 0.0;
    double dispatches_after = 0.0;
    std::uint64_t fused_ops = 0;
    std::uint64_t fused_gates_absorbed = 0;
    std::uint64_t fused_width_hist[6] = {0, 0, 0, 0, 0, 0};
    std::uint64_t plan_cache_hits = 0;
    if (options.compile_segments) {
        compiled.reserve(plan.num_levels());
        segments.reserve(plan.num_levels());
        std::uint64_t nodes = 1;
        for (std::size_t l = 0; l < plan.num_levels(); ++l) {
            std::shared_ptr<const sim::CompiledSegment> seg;
            if (options.plan_cache != nullptr) {
                seg = options.plan_cache->lookup(l);
            }
            if (seg != nullptr) {
                ++plan_cache_hits;
            } else {
                seg = std::make_shared<const sim::CompiledSegment>(
                    noise::compile_segment(circuit, plan.boundaries[l],
                                           plan.boundaries[l + 1], model,
                                           fusion));
                if (options.plan_cache != nullptr) {
                    options.plan_cache->insert(l, seg);
                }
            }
            const sim::SegmentStats& st = seg->stats();
            nodes *= plan.tree.arity(l);
            dispatches_before +=
                static_cast<double>(nodes) *
                static_cast<double>(st.source_gates);
            dispatches_after += static_cast<double>(nodes) *
                                static_cast<double>(st.ops);
            fused_ops += nodes * st.fused_runs;
            fused_gates_absorbed += nodes * st.fused_gates_absorbed;
            for (int w = 1; w <= 5; ++w) {
                fused_width_hist[w] += nodes * st.fused_width_hist[w];
            }
            compiled.push_back(std::move(seg));
        }
        for (const auto& seg : compiled) {
            segments.push_back(backend.prepare(*seg));
        }
    }
    RunShared shared{circuit,
                     model,
                     plan,
                     options,
                     backend,
                     backend.state_bytes(),
                     widest_level(plan),
                     segments,
                     result.distribution};
    TreeWorker root_worker(shared);
    if (options.collect_outcomes) {
        root_worker.outcomes_.reserve(plan.tree.total_outcomes());
    }
    try {
        StatePtr root = root_worker.arena().make_root();
        root_worker.note_state_alive();
        util::Rng rng(options.seed);
        root_worker.descend(0, root, rng);
        root_worker.note_state_dead();
        // An allocation failure the in-place degradation path could not
        // absorb (root allocation, a snapshot of a state shared across
        // parallel workers, or the rebuild register itself).  The unwind
        // above released every arena buffer; surface the structured form
        // so callers can retry or shed load.
    } catch (const std::bad_alloc&) {
        throw ResourceExhausted();
    }
    result.stats = root_worker.stats_;
    if (options.collect_outcomes) {
        for (sim::Index outcome : root_worker.outcomes_) {
            result.distribution.add_outcome(outcome);
        }
        result.raw_outcomes = std::move(root_worker.outcomes_);
    }
    const std::uint64_t peak =
        shared.peak_live_states.load(std::memory_order_relaxed);
    result.stats.peak_live_states = peak;
    result.stats.peak_state_bytes = peak * shared.state_bytes;
    result.stats.segment_fusion_reduction =
        dispatches_before > 0.0 ? 1.0 - dispatches_after / dispatches_before
                                : 0.0;
    result.stats.fused_ops = fused_ops;
    result.stats.fused_gates_absorbed = fused_gates_absorbed;
    result.stats.plan_cache_hits = plan_cache_hits;
    for (int w = 1; w <= 5; ++w) {
        result.stats.fused_width_hist[w] = fused_width_hist[w];
    }
    const sim::CommCounters comm = backend.comm_stats();
    result.stats.comm_bytes = comm.bytes;
    result.stats.comm_messages = comm.messages;
    result.stats.global_gates = comm.global_gates;
    result.stats.wall_seconds = wall.elapsed_s();
    result.stats.copy_seconds = root_worker.copy_timer_.total_s();
    TQSIM_ASSERT(result.stats.outcomes == plan.tree.total_outcomes());
    if (result.stats.outcomes > 0) {
        result.distribution.normalize();
    }
    return result;
}

RunResult
execute_tree(const Circuit& circuit, const NoiseModel& model,
             const PartitionPlan& plan, const ExecutorOptions& options)
{
    const std::unique_ptr<StateBackend> backend =
        make_state_backend(options.backend, circuit.num_qubits());
    return execute_tree(circuit, model, plan, options, *backend);
}

}  // namespace tqsim::core
