#include "core/tree_executor.h"

#include <stdexcept>
#include <utility>

#include "sim/sampler.h"
#include "util/assert.h"
#include "util/timer.h"

namespace tqsim::core {

namespace {

using noise::NoiseModel;
using noise::TrajectoryStats;
using sim::Circuit;
using sim::StateVector;

/** Recursive DFS state shared across the traversal. */
class TreeRun
{
  public:
    TreeRun(const Circuit& circuit, const NoiseModel& model,
            const PartitionPlan& plan, const ExecutorOptions& options,
            RunResult& result)
        : circuit_(circuit),
          model_(model),
          plan_(plan),
          options_(options),
          result_(result),
          state_bytes_(sim::state_vector_bytes(circuit.num_qubits()))
    {
    }

    void
    run()
    {
        StateVector root(circuit_.num_qubits());
        note_state_alive();
        util::Rng rng(options_.seed);
        descend(0, root, rng);
        note_state_dead();
    }

  private:
    /**
     * Expands the node owning @p state at @p level.  @p state may be
     * consumed (moved into the last child) when reuse_last_child is on.
     */
    void
    descend(std::size_t level, StateVector& state, util::Rng& node_rng)
    {
        if (level == plan_.num_levels()) {
            record_leaf(state, node_rng);
            return;
        }
        const std::uint64_t arity = plan_.tree.arity(level);
        const Circuit segment = plan_segment(level);
        for (std::uint64_t child = 0; child < arity; ++child) {
            util::Rng child_rng = node_rng.split(level, child);
            const bool reuse =
                options_.reuse_last_child && (child + 1 == arity);
            if (reuse) {
                simulate_segment(segment, state, child_rng);
                descend(level + 1, state, child_rng);
            } else {
                copy_timer_.start();
                StateVector work = state;
                copy_timer_.stop();
                note_state_alive();
                ++result_.stats.state_copies;
                result_.stats.bytes_copied += state_bytes_;
                simulate_segment(segment, work, child_rng);
                descend(level + 1, work, child_rng);
                note_state_dead();
            }
        }
    }

    Circuit
    plan_segment(std::size_t level) const
    {
        return circuit_.slice(plan_.boundaries[level],
                              plan_.boundaries[level + 1]);
    }

    void
    simulate_segment(const Circuit& segment, StateVector& state,
                     util::Rng& rng)
    {
        TrajectoryStats traj;
        noise::run_trajectory(state, segment, model_, rng, &traj);
        result_.stats.gate_applications += traj.gates;
        result_.stats.channel_applications += traj.channel_applications;
        result_.stats.error_events += traj.error_events;
        ++result_.stats.nodes_simulated;
    }

    void
    record_leaf(const StateVector& state, util::Rng& rng)
    {
        sim::Index outcome = sim::sample_once(state, rng);
        outcome = noise::apply_readout_error(
            outcome, circuit_.num_qubits(), model_.readout_flip_probability(),
            rng);
        result_.distribution.add_outcome(outcome);
        if (options_.collect_outcomes) {
            result_.raw_outcomes.push_back(outcome);
        }
        ++result_.stats.outcomes;
    }

    void
    note_state_alive()
    {
        ++live_states_;
        result_.stats.peak_live_states =
            std::max(result_.stats.peak_live_states, live_states_);
        result_.stats.peak_state_bytes = std::max(
            result_.stats.peak_state_bytes, live_states_ * state_bytes_);
    }

    void note_state_dead() { --live_states_; }

  public:
    util::AccumulatingTimer copy_timer_;

  private:
    const Circuit& circuit_;
    const NoiseModel& model_;
    const PartitionPlan& plan_;
    const ExecutorOptions& options_;
    RunResult& result_;
    const std::uint64_t state_bytes_;
    std::uint64_t live_states_ = 0;
};

}  // namespace

RunResult
execute_tree(const Circuit& circuit, const NoiseModel& model,
             const PartitionPlan& plan, const ExecutorOptions& options)
{
    if (plan.boundaries.size() != plan.tree.num_levels() + 1 ||
        plan.boundaries.front() != 0 ||
        plan.boundaries.back() != circuit.size()) {
        throw std::invalid_argument(
            "execute_tree: plan boundaries do not cover the circuit");
    }
    RunResult result{metrics::Distribution(circuit.num_qubits()),
                     {},
                     plan,
                     {}};
    if (options.collect_outcomes) {
        result.raw_outcomes.reserve(plan.tree.total_outcomes());
    }
    util::Timer wall;
    TreeRun run(circuit, model, plan, options, result);
    run.run();
    result.stats.wall_seconds = wall.elapsed_s();
    result.stats.copy_seconds = run.copy_timer_.total_s();
    TQSIM_ASSERT(result.stats.outcomes == plan.tree.total_outcomes());
    if (result.stats.outcomes > 0) {
        result.distribution.normalize();
    }
    return result;
}

}  // namespace tqsim::core
