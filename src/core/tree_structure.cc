#include "core/tree_structure.h"

#include <sstream>
#include <stdexcept>

#include "util/assert.h"

namespace tqsim::core {

TreeStructure::TreeStructure(std::vector<std::uint64_t> arities)
    : arities_(std::move(arities))
{
    if (arities_.empty()) {
        throw std::invalid_argument("TreeStructure requires >= 1 level");
    }
    for (std::uint64_t a : arities_) {
        if (a < 1) {
            throw std::invalid_argument("TreeStructure arities must be >= 1");
        }
    }
    // Guard against overflow of the outcome product.
    std::uint64_t prod = 1;
    for (std::uint64_t a : arities_) {
        if (prod > (std::uint64_t{1} << 40) / a) {
            throw std::invalid_argument(
                "TreeStructure outcome count is implausibly large");
        }
        prod *= a;
    }
}

TreeStructure
TreeStructure::baseline(std::uint64_t shots, std::size_t levels)
{
    if (levels < 1) {
        throw std::invalid_argument("baseline tree requires >= 1 level");
    }
    std::vector<std::uint64_t> arities(levels, 1);
    arities[0] = shots;
    return TreeStructure(std::move(arities));
}

std::uint64_t
TreeStructure::instances(std::size_t i) const
{
    if (i >= arities_.size()) {
        throw std::out_of_range("TreeStructure::instances: bad level");
    }
    std::uint64_t prod = 1;
    for (std::size_t j = 0; j <= i; ++j) {
        prod *= arities_[j];
    }
    return prod;
}

std::uint64_t
TreeStructure::total_outcomes() const
{
    return instances(arities_.size() - 1);
}

std::uint64_t
TreeStructure::total_nodes() const
{
    std::uint64_t nodes = 1;  // initial-state root
    for (std::size_t i = 0; i < arities_.size(); ++i) {
        nodes += instances(i);
    }
    return nodes;
}

double
TreeStructure::theoretical_speedup(
    const std::vector<std::size_t>& gates_per_level) const
{
    if (gates_per_level.size() != arities_.size()) {
        throw std::invalid_argument(
            "theoretical_speedup: per-level gate counts size mismatch");
    }
    const double n = static_cast<double>(total_outcomes());
    double total_gates = 0.0;
    double tree_work = 0.0;
    for (std::size_t i = 0; i < arities_.size(); ++i) {
        total_gates += static_cast<double>(gates_per_level[i]);
        tree_work += static_cast<double>(instances(i)) *
                     static_cast<double>(gates_per_level[i]);
    }
    if (tree_work <= 0.0) {
        throw std::invalid_argument("theoretical_speedup: zero work");
    }
    return n * total_gates / tree_work;
}

double
TreeStructure::theoretical_speedup_equal_lengths() const
{
    const std::vector<std::size_t> ones(arities_.size(), 1);
    return theoretical_speedup(ones);
}

std::string
TreeStructure::to_string() const
{
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < arities_.size(); ++i) {
        if (i) {
            os << ',';
        }
        os << arities_[i];
    }
    os << ')';
    return os.str();
}

double
max_speedup_equal_subcircuits(std::size_t k, std::uint64_t shots)
{
    if (k < 1 || shots < 1) {
        throw std::invalid_argument("max_speedup: k and shots must be >= 1");
    }
    const double kd = static_cast<double>(k);
    const double n = static_cast<double>(shots);
    return kd * n / ((kd - 1.0) + n);
}

}  // namespace tqsim::core
