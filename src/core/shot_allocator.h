#ifndef TQSIM_CORE_SHOT_ALLOCATOR_H_
#define TQSIM_CORE_SHOT_ALLOCATOR_H_

/**
 * @file
 * Shot-allocation arithmetic for the simulation tree (paper Sec. 3.2.3-4):
 * Cochran's formula for the first level (Eq. 5) and the uniform arities of
 * the remaining levels (Eq. 6), with the round-robin increment adjustment
 * that guarantees at least the requested number of outcomes.
 */

#include <cstdint>
#include <vector>

namespace tqsim::core {

/** Exact integer k-th root: the largest r with r^k <= x. */
std::uint64_t integer_kth_root(std::uint64_t x, std::size_t k);

/**
 * First-level node count A0 via Eq. 5.
 *
 * @param z confidence z-score.
 * @param epsilon margin of error in (0, 1).
 * @param first_error_rate the first subcircuit's aggregate error rate
 *        (Eq. 4 output).
 * @param shots total shots N.
 */
std::uint64_t first_level_arity(double z, double epsilon,
                                double first_error_rate, std::uint64_t shots);

/**
 * Largest k such that floor((shots/a0)^(1/k)) >= 2, i.e. the shot-based cap
 * on the number of *remaining* subcircuits.  Returns 0 when shots/a0 < 2.
 */
std::size_t max_remaining_levels(std::uint64_t shots, std::uint64_t a0);

/**
 * Builds the arity vector (A0, Ar, ..., Ar) with Ar from Eq. 6, then raises
 * the first-level arity to the smallest value whose outcome product reaches
 * @p shots (the paper's "increment from the first subcircuit onward"
 * adjustment, applied at the finest granularity).
 *
 * @param a0 first-level arity.
 * @param remaining_levels k >= 1 remaining subcircuits.
 * @param shots required minimum number of outcomes.
 */
std::vector<std::uint64_t> allocate_arities(std::uint64_t a0,
                                            std::size_t remaining_levels,
                                            std::uint64_t shots);

}  // namespace tqsim::core

#endif  // TQSIM_CORE_SHOT_ALLOCATOR_H_
